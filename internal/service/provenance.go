package service

// Provenance: the service-side face of the fleet-scale registry. With
// Config.Provenance set, fmverifyd keeps a durable ledger of which
// physical chip (fingerprint) owns each signed die identity, across
// batches and process restarts:
//
//   - POST /v1/enroll screens a chip and, if it verifies GENUINE,
//     records (manufacturer, die id) -> fingerprint in the registry.
//   - /v1/verify and /v1/verify/batch escalate a physics-GENUINE chip
//     to DUPLICATE-ID when its die id is on file under a different
//     physical fingerprint (or the id is already conflicted) — the
//     replay-imprint clone caught even when clone and victim never
//     meet in one batch.
//   - /v1/verify/batch additionally cross-checks the batch against
//     itself with the same dedup kernel, scoped to the request.
//
// Escalation happens outside the verdict cache: cached entries hold the
// physics verdict (a pure function of the chip bytes), and the registry
// overlay is applied per request, serially in input order, so responses
// stay deterministic for a given registry state.

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/metrics"
	"github.com/flashmark/flashmark/internal/registry"
)

// EnrollReport is the response body of POST /v1/enroll.
type EnrollReport struct {
	SHA256       string `json:"sha256"`
	Manufacturer string `json:"manufacturer"`
	DieID        uint64 `json:"dieId"`
	Fingerprint  string `json:"fingerprint"`
	// Verdict is the screening verdict: GENUINE for a clean enrollment,
	// DUPLICATE-ID when the identity is now claimed by more than one
	// physical chip.
	Verdict  string `json:"verdict"`
	Accepted bool   `json:"accepted"`
	// Count is how many enrollments of this identity exist, this one
	// included; Duplicate is Count > 1 (same physical chip re-enrolled
	// is a duplicate but not a conflict).
	Count     int  `json:"count"`
	Duplicate bool `json:"duplicate"`
	Conflict  bool `json:"conflict"`
	// ChallengeFingerprint is the chip's challenge-response fingerprint,
	// recorded beside the identity when the server runs a challenge
	// plane. ChallengeConflict reports that the registry now holds a
	// different response fingerprint for this die id — a second physical
	// chip claiming it, caught on the challenge axis at enrollment.
	ChallengeFingerprint string `json:"challengeFingerprint,omitempty"`
	ChallengeConflict    bool   `json:"challengeConflict,omitempty"`
}

// registerRegistryGauges exposes the provenance store's counters on
// /metrics; called once at New when a store is configured.
func registerRegistryGauges(reg *metrics.Registry, store registry.Store) {
	reg.GaugeFunc("fmregistry_keys", "distinct die identities on file",
		func() int64 { return store.Stats().Keys })
	reg.GaugeFunc("fmregistry_enrollments", "enrollments applied, duplicates included",
		func() int64 { return store.Stats().Enrollments })
	reg.GaugeFunc("fmregistry_conflicts", "die identities claimed by multiple physical fingerprints",
		func() int64 { return store.Stats().Conflicts })
	reg.GaugeFunc("fmregistry_lookups", "registry lookups served",
		func() int64 { return store.Stats().Lookups })
	reg.GaugeFunc("fmregistry_wal_appends_total", "records appended to the registry WAL",
		func() int64 { return store.Stats().WALAppends })
	reg.GaugeFunc("fmregistry_wal_fsyncs_total", "fsyncs of the registry WAL (group commit batches these)",
		func() int64 { return store.Stats().WALFsyncs })
	reg.GaugeFunc("fmregistry_compactions_total", "registry snapshot compactions completed",
		func() int64 { return store.Stats().Compactions })
	reg.GaugeFunc("fmregistry_wal_segments", "WAL generation files on disk (growth with flat compactions means compaction is failing)",
		func() int64 { return store.Stats().WALSegments })
	reg.GaugeFunc("fmregistry_last_compaction_gen", "generation of the newest on-disk snapshot (0 = never compacted)",
		func() int64 { return int64(store.Stats().LastCompaction) })
	reg.GaugeFunc("fmregistry_recovery_us", "microseconds the last Open spent rebuilding registry state",
		func() int64 { return store.Stats().Recovery.Microseconds() })
}

// BatchLookuper is the bulk read-side a distributed provenance backend
// offers: resolve many keys with one round trip per shard instead of a
// round trip per key. found[i] reports whether keys[i] is on file.
// Implementations fail open (not-found) for unreachable shards, like
// Store.Lookup. The batch verify path type-asserts for it; single-node
// backends don't need it.
type BatchLookuper interface {
	LookupBatch(keys []registry.Key) (results []registry.LookupResult, found []bool)
}

// chipIdentity extracts the registry key and physical fingerprint from a
// screened report. Only a physics-accepted chip with a decoded payload
// has an identity worth checking: every other verdict is already refused.
func chipIdentity(rep *ChipReport) (registry.Key, registry.Fingerprint, bool) {
	if rep.Payload == nil || !rep.Accepted {
		return registry.Key{}, registry.Fingerprint{}, false
	}
	k := registry.Key{Manufacturer: rep.Payload.Manufacturer, DieID: rep.Payload.DieID}
	return k, registry.DeviceFingerprint(rep.Part, rep.Seed), true
}

// fleetReason consults the fleet registry for a verdict escalation:
// non-empty when the chip's die id is on file conflicted, or under a
// different physical fingerprint. The chip that enrolled the id checks
// back clean (same fingerprint), so re-verifying enrolled stock is safe.
func (s *Server) fleetReason(k registry.Key, fp registry.Fingerprint) string {
	lr, ok := s.cfg.Provenance.Lookup(k)
	return fleetReasonFrom(lr, ok, fp)
}

// fleetReasonFrom is fleetReason's pure half: the escalation decision
// for one already-fetched registry view. The batch path runs it over
// prefetched per-shard bulk lookups; the strings are shared with the
// single-lookup path, which is what keeps cluster-path batch responses
// byte-identical to single-node ones.
func fleetReasonFrom(lr registry.LookupResult, ok bool, fp registry.Fingerprint) string {
	if !ok {
		return ""
	}
	if lr.Conflict {
		return "die id enrolled by multiple physical fingerprints in the fleet registry"
	}
	if !lr.Fingerprint.IsZero() && lr.Fingerprint != fp {
		return "die id already enrolled under a different physical fingerprint"
	}
	return ""
}

// escalate rewrites a physics report as DUPLICATE-ID with the given
// provenance note, returning the new body and verdict. rep is mutated
// in place; callers pass a request-local copy (cache hits hand out
// value copies, so the cached physics report is never touched).
func (s *Server) escalate(rep *ChipReport, reason string) ([]byte, counterfeit.Verdict, *httpError) {
	rep.Verdict = counterfeit.VerdictDuplicateID.String()
	rep.Accepted = false
	rep.Provenance = reason
	body, err := encodeChipReport(rep)
	if err != nil {
		return nil, 0, &httpError{http.StatusInternalServerError, "encoding report: " + err.Error()}
	}
	s.met.escalations.Inc()
	return body, counterfeit.VerdictDuplicateID, nil
}

// applyProvenance overlays the fleet registry on one screened chip:
// the identity of a physics-GENUINE report is checked against the store
// and the report escalated to DUPLICATE-ID on a mismatch. rep is the
// decoded form of body (threaded from screening or the verdict cache,
// so no re-unmarshal happens here). No-op without a configured store.
func (s *Server) applyProvenance(body []byte, rep *ChipReport, verdict counterfeit.Verdict) ([]byte, counterfeit.Verdict, *httpError) {
	if s.cfg.Provenance == nil || verdict != counterfeit.VerdictGenuine {
		return body, verdict, nil
	}
	k, fp, ok := chipIdentity(rep)
	if !ok {
		return body, verdict, nil
	}
	if reason := s.fleetReason(k, fp); reason != "" {
		return s.escalate(rep, reason)
	}
	return body, verdict, nil
}

// batchProvenance overlays the registry on a whole batch, serially and
// in input order so the response bytes are deterministic regardless of
// how the physics fan-out was scheduled. Two passes: every accepted
// identity is first enrolled into a request-scoped Memory (the same
// dedup kernel as the fleet store), then every item whose identity is
// tainted — against the fleet or within the batch — is escalated. The
// second pass makes the taint retroactive: the batch's first holder of
// a duplicated id is flagged too. Identical chip bytes repeated in one
// batch carry the same fingerprint and do not escalate, so client
// retries stay safe.
func (s *Server) batchProvenance(bodies [][]byte, reps []ChipReport, verdicts []counterfeit.Verdict, failed []bool) *httpError {
	if s.cfg.Provenance == nil {
		return nil
	}
	type item struct {
		key    registry.Key
		fp     registry.Fingerprint
		track  bool
		reason string
	}
	items := make([]item, len(bodies))
	batch := registry.NewMemory(0)
	var tracked []int
	for i := range bodies {
		if failed[i] || verdicts[i] != counterfeit.VerdictGenuine {
			continue
		}
		it := &items[i]
		k, fp, ok := chipIdentity(&reps[i])
		if !ok {
			continue
		}
		it.key, it.fp, it.track = k, fp, true
		tracked = append(tracked, i)
		batch.Enroll(registry.Enrollment{Key: k, Fingerprint: fp, Source: "batch"})
	}
	// Fleet lookups: one bulk fan-out across the registry shards when
	// the backend supports it, else one lookup per identity. Either way
	// the escalation decision (fleetReasonFrom) and hence the response
	// bytes are identical — the registry is not mutated by this pass,
	// so fetch order cannot change any answer.
	if bl, ok := s.cfg.Provenance.(BatchLookuper); ok && len(tracked) > 0 {
		keys := make([]registry.Key, len(tracked))
		for j, i := range tracked {
			keys[j] = items[i].key
		}
		results, found := bl.LookupBatch(keys)
		for j, i := range tracked {
			items[i].reason = fleetReasonFrom(results[j], found[j], items[i].fp)
		}
	} else {
		for _, i := range tracked {
			items[i].reason = s.fleetReason(items[i].key, items[i].fp)
		}
	}
	for i := range items {
		it := &items[i]
		if !it.track {
			continue
		}
		reason := it.reason
		if reason == "" {
			if lr, ok := batch.Lookup(it.key); ok && lr.Conflict {
				reason = "die id appears on multiple physical chips in this batch"
			}
		}
		if reason == "" {
			continue
		}
		body, verdict, herr := s.escalate(&reps[i], reason)
		if herr != nil {
			return herr
		}
		bodies[i], verdicts[i] = body, verdict
	}
	return nil
}

// handleEnroll answers POST /v1/enroll: screen the chip, and if it
// verifies GENUINE, record its identity in the fleet registry. The
// response reports what the registry knew: a conflict means this
// physical chip is the second claimant of the die id.
func (s *Server) handleEnroll(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	s.met.requests.Inc()
	defer func() { s.met.latency.ObserveDuration(s.since(start)) }()
	if r.Method != http.MethodPost {
		s.met.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, "use POST with a chip file body")
		return
	}
	if s.cfg.Provenance == nil {
		s.met.errors.Inc()
		writeError(w, http.StatusNotImplemented, "no fleet registry configured (start fmverifyd with -registry-dir)")
		return
	}
	done, ok := s.beginRequest()
	if !ok {
		s.met.errors.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer done()
	raw, releaseBody, herr := s.readBody(w, r)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	defer releaseBody()
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		if err == errOverloaded {
			s.met.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "verification queue is full; retry later")
			return
		}
		s.met.errors.Inc()
		writeError(w, statusClientClosedRequest, "client canceled while queued")
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	_, rep, verdict, _, herr := s.screenCached(ctx, chipKey(raw), raw)
	if herr != nil {
		s.met.errors.Inc()
		writeError(w, herr.status, herr.msg)
		return
	}
	k, fp, ok := chipIdentity(&rep)
	if !ok {
		s.countChip(verdict)
		s.met.errors.Inc()
		writeError(w, http.StatusUnprocessableEntity,
			"only chips that verify GENUINE can be enrolled; this chip screened "+rep.Verdict)
		return
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "fmverifyd"
	}
	// In the honest-hardware regime the registry holds no simulator
	// identity: zero fingerprints never conflict, so only the challenge
	// axis can tell two claimants of one die id apart.
	if s.cfg.OmitDeviceFingerprint {
		fp = registry.Fingerprint{}
	}
	res, err := s.cfg.Provenance.Enroll(registry.Enrollment{
		Key:         k,
		Fingerprint: fp,
		Source:      source,
		UnixMicro:   s.cfg.Now().UnixMicro(),
	})
	if err != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusInternalServerError, "enrollment failed: "+err.Error())
		return
	}
	s.met.enrolls.Inc()
	if res.Duplicate {
		s.met.enrollDuplicates.Inc()
	}
	if res.Conflict {
		s.met.enrollConflicts.Inc()
	}
	out := EnrollReport{
		SHA256:       rep.SHA256,
		Manufacturer: k.Manufacturer,
		DieID:        k.DieID,
		Fingerprint:  fp.String(),
		Verdict:      counterfeit.VerdictGenuine.String(),
		Accepted:     true,
		Count:        res.Count,
		Duplicate:    res.Duplicate,
		Conflict:     res.Conflict,
	}
	if s.cfg.Challenge != nil {
		resp, chRes, herr := s.enrollChallenge(k, source, raw)
		if herr != nil {
			s.met.errors.Inc()
			writeError(w, herr.status, herr.msg)
			return
		}
		out.ChallengeFingerprint = resp.Fingerprint.String()
		out.ChallengeConflict = chRes.Conflict
		if chRes.Conflict {
			s.met.enrollConflicts.Inc()
			res.Conflict = true
		}
	}
	if res.Conflict {
		out.Verdict = counterfeit.VerdictDuplicateID.String()
		out.Accepted = false
	}
	s.countChip(verdictFromEnroll(res))
	respBody, merr := json.Marshal(out)
	if merr != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusInternalServerError, "encoding report: "+merr.Error())
		return
	}
	s.logf("enroll %s/%d (%s) -> count=%d conflict=%v in %v",
		k.Manufacturer, k.DieID, rep.SHA256[:12], res.Count, res.Conflict,
		s.since(start).Round(time.Millisecond))
	writeJSONBody(w, http.StatusOK, respBody)
}

// verdictFromEnroll maps an enrollment outcome onto the verdict
// counters: a conflicted enrollment is a caught DUPLICATE-ID.
func verdictFromEnroll(res registry.EnrollResult) counterfeit.Verdict {
	if res.Conflict {
		return counterfeit.VerdictDuplicateID
	}
	return counterfeit.VerdictGenuine
}
