package service

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"unicode/utf8"
)

// Append-style JSON encoding for the verify hot path. The service's
// response surface is pinned byte-for-byte by the golden tests, so the
// per-report json.Marshal (reflection, intermediate buffers, one []byte
// per report) is replaced with hand-rolled appenders that reproduce
// encoding/json's output exactly: the same HTML-escaped strings, the
// same ES6-style float rendering, the same field order and omitempty
// behavior as the struct tags, and sorted keys for the one map that
// crosses the wire (the batch verdict tally). The equivalence property
// is tested directly against json.Marshal in encode_test.go and
// end-to-end by the golden suite.

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string token, replicating
// encoding/json's appendString with escapeHTML=true (the json.Marshal
// default): short escapes for \" \\ \b \f \n \r \t, \u00XX for other
// control bytes and for < > &, � for invalid UTF-8 bytes, and
//  /  escaped for JSONP safety.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f the way encoding/json renders a float64:
// 'f' form by default, switching to 'e' form outside [1e-6, 1e21) with
// the exponent's leading zero stripped. NaN and infinities are
// unrepresentable, with the same error text json.Marshal produces.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("json: unsupported value: %s", strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// clean up e-09 to e-9
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

func appendJSONBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendChipReport appends the JSON encoding of rep, byte-identical to
// json.Marshal of the struct: field order and omitempty follow the
// ChipReport/PayloadReport tags.
func appendChipReport(dst []byte, rep *ChipReport) ([]byte, error) {
	dst = append(dst, `{"sha256":`...)
	dst = appendJSONString(dst, rep.SHA256)
	if rep.Part != "" {
		dst = append(dst, `,"part":`...)
		dst = appendJSONString(dst, rep.Part)
	}
	if rep.Seed != 0 {
		dst = append(dst, `,"seed":`...)
		dst = strconv.AppendUint(dst, rep.Seed, 10)
	}
	dst = append(dst, `,"verdict":`...)
	dst = appendJSONString(dst, rep.Verdict)
	dst = append(dst, `,"accepted":`...)
	dst = appendJSONBool(dst, rep.Accepted)
	if p := rep.Payload; p != nil {
		dst = append(dst, `,"payload":{"manufacturer":`...)
		dst = appendJSONString(dst, p.Manufacturer)
		dst = append(dst, `,"dieId":`...)
		dst = strconv.AppendUint(dst, p.DieID, 10)
		dst = append(dst, `,"speedGrade":`...)
		dst = strconv.AppendUint(dst, uint64(p.SpeedGrade), 10)
		dst = append(dst, `,"status":`...)
		dst = appendJSONString(dst, p.Status)
		dst = append(dst, `,"yearWeek":`...)
		dst = strconv.AppendUint(dst, uint64(p.YearWeek), 10)
		dst = append(dst, '}')
	}
	dst = append(dst, `,"replicaDisagreement":`...)
	dst, err := appendJSONFloat(dst, rep.ReplicaDisagreement)
	if err != nil {
		return nil, err
	}
	dst = append(dst, `,"wornDataSegments":`...)
	dst = strconv.AppendInt(dst, int64(rep.WornDataSegments), 10)
	dst = append(dst, `,"sampledDataSegments":`...)
	dst = strconv.AppendInt(dst, int64(rep.SampledDataSegments), 10)
	if rep.Fault != "" {
		dst = append(dst, `,"fault":`...)
		dst = appendJSONString(dst, rep.Fault)
	}
	dst = append(dst, `,"deviceTimeUs":`...)
	dst = strconv.AppendInt(dst, rep.DeviceTimeUs, 10)
	if rep.Provenance != "" {
		dst = append(dst, `,"provenance":`...)
		dst = appendJSONString(dst, rep.Provenance)
	}
	if rep.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, rep.Error)
	}
	return append(dst, '}'), nil
}

// encodeChipReport renders rep as a right-sized body the caller owns
// (it may outlive the request in the verdict cache).
func encodeChipReport(rep *ChipReport) ([]byte, error) {
	return appendChipReport(make([]byte, 0, 384), rep)
}

// appendBatchResponse appends the batch envelope around the already-
// encoded per-chip result bodies, byte-identical to json.Marshal of a
// BatchResponse holding the same results: the result bodies come from
// appendChipReport and are therefore compact and HTML-escaped already,
// so embedding them verbatim is exactly what marshaling a RawMessage
// does, and the verdict tally is written in sorted key order like any
// Go map.
func appendBatchResponse(dst []byte, results [][]byte, sum BatchSummary, verdictKeys []string) []byte {
	dst = append(dst, `{"results":[`...)
	for i, r := range results {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, r...)
	}
	dst = append(dst, `],"summary":{"chips":`...)
	dst = strconv.AppendInt(dst, int64(sum.Chips), 10)
	dst = append(dst, `,"accepted":`...)
	dst = strconv.AppendInt(dst, int64(sum.Accepted), 10)
	dst = append(dst, `,"refused":`...)
	dst = strconv.AppendInt(dst, int64(sum.Refused), 10)
	dst = append(dst, `,"failed":`...)
	dst = strconv.AppendInt(dst, int64(sum.Failed), 10)
	dst = append(dst, `,"verdicts":{`...)
	verdictKeys = verdictKeys[:0]
	for k := range sum.Verdicts {
		verdictKeys = append(verdictKeys, k)
	}
	sort.Strings(verdictKeys)
	for i, k := range verdictKeys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(sum.Verdicts[k]), 10)
	}
	return append(dst, `}}}`...)
}
