package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/registry"
)

// Golden-response tests: the exact response bytes of /v1/verify and
// /v1/verify/batch for every report shape the service can produce —
// genuine, counterfeit (recycled), injected fault, malformed input, and
// DUPLICATE-ID provenance escalation (fleet-registry and in-batch).
//
// The goldens were recorded against the pre-refactor handlers (per-report
// json.Marshal); the zero-alloc pipeline must reproduce them byte for
// byte, which is the PR-4-style equivalence proof for the whole request
// lifecycle: format sniffing, loader reuse, the append-style report
// encoder, and the no-unmarshal provenance overlay all sit under this
// test. Regenerate deliberately with:
//
//	go test ./internal/service/ -run TestGolden -update

var updateGolden = flag.Bool("update", false, "rewrite the golden response files")

// Fixed fixture identities. The victim chip's die id is pre-enrolled in
// the fleet registry, so the clone (same die id, different physical
// seed) escalates; the batch pair share a die id only with each other,
// so they escalate batch-scope.
const (
	goldenSeedGenuine  = 0x60D1
	goldenSeedRecycled = 0x60D2
	goldenSeedVictim   = 0x60D3
	goldenSeedClone    = 0x60D4
	goldenSeedBatchA   = 0x60D5
	goldenSeedBatchB   = 0x60D6
	goldenSeedNAND     = 0x60D7

	goldenDieGenuine  = 4001
	goldenDieRecycled = 4002
	goldenDieCloned   = 4003
	goldenDieBatchDup = 4005
)

// goldenStore builds the fleet registry every golden server sees: the
// victim's identity is on file under the victim's physical fingerprint.
func goldenStore(t testing.TB) registry.Store {
	t.Helper()
	store := registry.NewMemory(0)
	if _, err := store.Enroll(registry.Enrollment{
		Key:         registry.Key{Manufacturer: "TC", DieID: goldenDieCloned},
		Fingerprint: registry.DeviceFingerprint("FM-SIM16", goldenSeedVictim),
		Source:      "golden",
	}); err != nil {
		t.Fatal(err)
	}
	return store
}

// goldenVerifier enables the recycling screen so the RECYCLED verdict
// (with its worn-segment counts) is part of the pinned surface.
func goldenVerifier() counterfeit.Verifier {
	v := testVerifier()
	v.CheckRecycling = true
	return v
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_"+name+".json")
}

// checkGolden asserts the response status and compares the exact body
// bytes against the recorded golden (or rewrites it under -update).
func checkGolden(t *testing.T, name string, wantStatus int, resp *http.Response) {
	t.Helper()
	body := readAll(t, resp)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d, want %d\nbody: %s", name, resp.StatusCode, wantStatus, body)
	}
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: no golden recorded (run with -update): %v", name, err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("%s: response drifted from the recorded golden\n got: %s\nwant: %s", name, body, want)
	}
}

func TestGoldenVerifyResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{Verifier: goldenVerifier(), Provenance: goldenStore(t)})
	cases := []struct {
		name   string
		body   []byte
		status int
	}{
		{"single_genuine", chipBytes(t, counterfeit.ClassGenuineAccept, goldenSeedGenuine, goldenDieGenuine), http.StatusOK},
		{"single_recycled", chipBytes(t, counterfeit.ClassRecycled, goldenSeedRecycled, goldenDieRecycled), http.StatusOK},
		{"single_duplicate", chipBytes(t, counterfeit.ClassGenuineAccept, goldenSeedClone, goldenDieCloned), http.StatusOK},
		{"single_nand", nandBlank(t, goldenSeedNAND), http.StatusOK},
		{"single_error", []byte("not a chip"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		checkGolden(t, tc.name, tc.status, postChip(t, ts.URL+"/v1/verify", tc.body))
		// A second pass serves GENUINE/refused verdicts from the verdict
		// cache and re-applies the provenance overlay per request; the
		// bytes must not change either way.
		checkGolden(t, tc.name, tc.status, postChip(t, ts.URL+"/v1/verify", tc.body))
	}
}

func TestGoldenFaultResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Verifier: goldenVerifier(),
		Decorate: func(d device.Device) device.Device {
			return device.InjectFaults(d, device.FaultConfig{Seed: 7, EraseTimeoutProb: 1})
		},
	})
	chip := chipBytes(t, counterfeit.ClassGenuineAccept, goldenSeedGenuine, goldenDieGenuine)
	checkGolden(t, "single_fault", http.StatusOK, postChip(t, ts.URL+"/v1/verify", chip))
}

// TestGoldenBatchResponse pins the whole batch envelope: input-order
// results, the embedded per-chip ERROR report, the summary with its
// sorted verdict tally, fleet-registry escalation of the clone, and the
// retroactive in-batch escalation of both holders of a duplicated id.
func TestGoldenBatchResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{Verifier: goldenVerifier(), Provenance: goldenStore(t), BatchWorkers: 4})
	var req BatchRequest
	for _, c := range [][]byte{
		chipBytes(t, counterfeit.ClassGenuineAccept, goldenSeedGenuine, goldenDieGenuine),
		chipBytes(t, counterfeit.ClassRecycled, goldenSeedRecycled, goldenDieRecycled),
		chipBytes(t, counterfeit.ClassGenuineAccept, goldenSeedClone, goldenDieCloned),
		[]byte(`{"format":"bogus"}`),
		chipBytes(t, counterfeit.ClassGenuineAccept, goldenSeedBatchA, goldenDieBatchDup),
		chipBytes(t, counterfeit.ClassGenuineAccept, goldenSeedBatchB, goldenDieBatchDup),
	} {
		req.Chips = append(req.Chips, json.RawMessage(c))
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "batch", http.StatusOK, postChip(t, ts.URL+"/v1/verify/batch", body))
	// Identical request again: the physics verdicts now come from the
	// cache, the batch-scope dedup state is rebuilt per request, and the
	// response must stay byte-identical.
	checkGolden(t, "batch", http.StatusOK, postChip(t, ts.URL+"/v1/verify/batch", body))
}
