package service

// Contract test for the distributed verification plane: a batch verify
// served through the sharded cluster path must be byte-identical to the
// same batch served against a single local registry. The serial
// response post-pass already guarantees input order; this pins that the
// cross-shard scatter/gather does not perturb a single byte of it.

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/cluster"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/registry"
)

// startShard serves one solo-primary registry node and returns its
// address.
func startShard(t *testing.T) string {
	t.Helper()
	store, err := registry.Open(t.TempDir(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.NewNode(cluster.NodeConfig{Store: store, Role: cluster.RolePrimary})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go node.Serve(ln)
	t.Cleanup(func() { node.Close(); store.Close() })
	return ln.Addr().String()
}

func TestClusterBatchByteIdenticalToLocal(t *testing.T) {
	// Two servers over the same verifier: one with a plain in-process
	// registry, one fronting a 2-shard cluster.
	localStore := registry.NewMemory(0)
	_, localTS := newTestServer(t, Config{Provenance: localStore, BatchWorkers: 4})

	clusterClient, err := cluster.NewClient(
		[]cluster.ShardSpec{{Primary: startShard(t)}, {Primary: startShard(t)}},
		cluster.ClientOptions{Timeout: 2 * time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clusterClient.Close() })
	_, clusterTS := newTestServer(t, Config{Provenance: clusterClient, BatchWorkers: 4})

	// A mixed fleet: victims, their clones, a clean chip, an unmarked
	// fake. Die ids chosen so the ring splits them across both shards.
	chips := [][]byte{
		chipBytes(t, counterfeit.ClassGenuineAccept, 0xA1, 6001), // victim 1
		chipBytes(t, counterfeit.ClassGenuineAccept, 0xA2, 6002), // victim 2
		chipBytes(t, counterfeit.ClassUnmarked, 0xA3, 6003),
		chipBytes(t, counterfeit.ClassGenuineAccept, 0xA4, 6004), // clean
	}
	clones := [][]byte{
		chipBytes(t, counterfeit.ClassGenuineAccept, 0xD1, 6001),
		chipBytes(t, counterfeit.ClassGenuineAccept, 0xD2, 6002),
	}

	// Confirm the contested die ids actually land on different shards —
	// otherwise this test silently degrades to single-shard coverage.
	ring := ringShards(t, 2, 6001, 6002)
	if ring[0] == ring[1] {
		t.Logf("note: dies 6001 and 6002 share shard %d; cross-shard split covered by die spread", ring[0])
	}

	// Enroll the victims through both planes identically.
	for _, url := range []string{localTS.URL, clusterTS.URL} {
		for _, chip := range chips[:2] {
			resp := postChip(t, url+"/v1/enroll?source=line-a", chip)
			if resp.StatusCode != 200 {
				t.Fatalf("enroll via %s: status %d", url, resp.StatusCode)
			}
			resp.Body.Close()
		}
	}

	req := BatchRequest{}
	for _, c := range chips {
		req.Chips = append(req.Chips, json.RawMessage(c))
	}
	for _, c := range clones {
		req.Chips = append(req.Chips, json.RawMessage(c))
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	localRaw := readAll(t, postChip(t, localTS.URL+"/v1/verify/batch", body))
	clusterRaw := readAll(t, postChip(t, clusterTS.URL+"/v1/verify/batch", body))
	if !bytes.Equal(localRaw, clusterRaw) {
		t.Fatalf("cluster batch response diverged from local:\nlocal:   %s\ncluster: %s", localRaw, clusterRaw)
	}

	// Sanity on the shared content: victims and clones both escalate
	// (the in-batch duplicate pass flags every chip sharing a die id),
	// the unmarked chip stays a physics verdict, order is input order.
	var br BatchResponse
	if err := json.Unmarshal(clusterRaw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 6 {
		t.Fatalf("got %d results", len(br.Results))
	}
	for i, want := range []string{"DUPLICATE-ID", "DUPLICATE-ID", "NO-WATERMARK", "GENUINE", "DUPLICATE-ID", "DUPLICATE-ID"} {
		var rep ChipReport
		if err := json.Unmarshal(br.Results[i], &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != want {
			t.Fatalf("result %d: verdict %s, want %s (%+v)", i, rep.Verdict, want, rep)
		}
	}

	// Repeat the post: responses stay byte-stable on both planes.
	if again := readAll(t, postChip(t, clusterTS.URL+"/v1/verify/batch", body)); !bytes.Equal(again, clusterRaw) {
		t.Fatal("cluster batch response not byte-stable across repeats")
	}
}

// ringShards reports which shard each die id routes to under an n-shard
// ring, so the test can document its cross-shard coverage.
func ringShards(t *testing.T, n int, dies ...uint64) []int {
	t.Helper()
	ring, err := cluster.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(dies))
	for i, die := range dies {
		out[i] = ring.Shard(registry.Key{Manufacturer: "flashmark-sim", DieID: die})
	}
	return out
}
