package wmcode_test

import (
	"fmt"

	"github.com/flashmark/flashmark/internal/wmcode"
)

// ExampleCodec_Encode shows the manufacturer-side payload encoding: every
// emitted word is a balanced codeword (8 ones), so any later one-way
// tampering is visible.
func ExampleCodec_Encode() {
	c := wmcode.Codec{Key: []byte("signing-key")}
	words, err := c.Encode(wmcode.Payload{
		Manufacturer: "TC",
		DieID:        1001,
		Status:       wmcode.StatusAccept,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(words) == c.PayloadWords())
	p, rep, err := c.Decode(words)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Manufacturer, p.DieID, p.Status, rep.Tampered())
	// Output:
	// true
	// TC 1001 ACCEPT false
}

// ExampleCodec_DecodeReplicas shows fused decoding: a whole corrupted
// replica is outvoted by the others.
func ExampleCodec_DecodeReplicas() {
	c := wmcode.Codec{}
	words, _ := c.Encode(wmcode.Payload{Manufacturer: "TC", DieID: 7, Status: wmcode.StatusReject})
	bad := make([]uint64, len(words)) // an all-zero (fully corrupted) view
	views := [][]uint64{words, bad, words}
	p, rep, err := c.DecodeReplicas(views)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Status, rep.Tampered())
	// Output: REJECT false
}
