package wmcode

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func samplePayload() Payload {
	return Payload{
		Manufacturer: "TC",
		DieID:        0xDEADBEEF1234,
		SpeedGrade:   3,
		Status:       StatusAccept,
		YearWeek:     2614,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := Codec{Key: []byte("manufacturer-secret")}
	words, err := c.Encode(samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != c.PayloadWords() {
		t.Fatalf("encoded %d words, PayloadWords says %d", len(words), c.PayloadWords())
	}
	p, rep, err := c.Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if p != samplePayload() {
		t.Fatalf("round trip: %+v != %+v", p, samplePayload())
	}
	if rep.Tampered() {
		t.Fatalf("pristine watermark reported tampered: %+v", rep)
	}
	if !rep.Signed || !rep.SignatureOK || !rep.CRCOK || rep.BalanceErrors != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestUnsignedRoundTrip(t *testing.T) {
	c := Codec{}
	words, err := c.Encode(samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	p, rep, err := c.Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if p != samplePayload() {
		t.Fatal("unsigned round trip failed")
	}
	if rep.Signed || rep.Tampered() {
		t.Fatalf("report = %+v", rep)
	}
}

func TestEveryCodewordBalanced(t *testing.T) {
	c := Codec{Key: []byte("k")}
	words, err := c.Encode(samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if bits.OnesCount64(w) != 8 {
			t.Errorf("word %d = %#x has %d ones, want 8", i, w, bits.OnesCount64(w))
		}
	}
}

func TestOneToZeroTamperingDetected(t *testing.T) {
	// The only physical attack: stress more cells, turning 1s into 0s.
	// Every such flip must be detectable.
	c := Codec{Key: []byte("k")}
	words, err := c.Encode(samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	for wi := range words {
		for b := 0; b < 16; b++ {
			mask := uint64(1) << uint(b)
			if words[wi]&mask == 0 {
				continue
			}
			tampered := append([]uint64(nil), words...)
			tampered[wi] &^= mask
			_, rep, derr := c.Decode(tampered)
			if derr == nil && !rep.Tampered() {
				t.Fatalf("1->0 flip at word %d bit %d undetected", wi, b)
			}
		}
	}
}

func TestStatusForgeryDetected(t *testing.T) {
	// A counterfeiter holding a REJECT die wants it to read ACCEPT.
	// StatusReject=2 (binary 10), StatusAccept=1 (binary 01): moving
	// between them requires setting a bit, which stressing cannot do;
	// and any clearing attack breaks balance or signature.
	c := Codec{Key: []byte("k")}
	reject := samplePayload()
	reject.Status = StatusReject
	words, err := c.Encode(reject)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: try every single- and double-bit 1->0 clearing on the
	// status codeword (index 3) and verify none yields a clean ACCEPT.
	statusIdx := 3
	orig := words[statusIdx]
	var ones []uint
	for b := uint(0); b < 16; b++ {
		if orig&(1<<b) != 0 {
			ones = append(ones, b)
		}
	}
	try := func(w uint64) {
		t.Helper()
		tampered := append([]uint64(nil), words...)
		tampered[statusIdx] = w
		p, rep, derr := c.Decode(tampered)
		if derr == nil && !rep.Tampered() && p.Status == StatusAccept {
			t.Fatalf("forged ACCEPT with codeword %#x", w)
		}
	}
	for i, a := range ones {
		try(orig &^ (1 << a))
		for _, b := range ones[i+1:] {
			try(orig &^ (1 << a) &^ (1 << b))
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	c := Codec{}
	if _, _, err := c.Decode(nil); err == nil {
		t.Error("nil words accepted")
	}
	if _, _, err := c.Decode(make([]uint64, 5)); err == nil {
		t.Error("short words accepted")
	}
	// Wrong magic.
	words, _ := c.Encode(samplePayload())
	words[0] = BalanceByte('X')
	if _, _, err := c.Decode(words); err == nil {
		t.Error("bad magic accepted")
	}
	// Wrong version.
	words, _ = c.Encode(samplePayload())
	words[2] = BalanceByte(99)
	if _, _, err := c.Decode(words); err == nil {
		t.Error("bad version accepted")
	}
}

func TestDecodeWrongKey(t *testing.T) {
	enc := Codec{Key: []byte("right")}
	words, err := enc.Encode(samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	dec := Codec{Key: []byte("wrong")}
	_, rep, err := dec.Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignatureOK {
		t.Error("wrong key verified signature")
	}
	if !rep.Tampered() {
		t.Error("bad signature not reported as tampering")
	}
}

func TestEncodeValidation(t *testing.T) {
	c := Codec{}
	p := samplePayload()
	p.Manufacturer = "TOOLONGNAME"
	if _, err := c.Encode(p); err == nil {
		t.Error("long manufacturer accepted")
	}
	p = samplePayload()
	p.Manufacturer = "bad\x01"
	if _, err := c.Encode(p); err == nil {
		t.Error("non-printable manufacturer accepted")
	}
	p = samplePayload()
	p.Status = Status(200)
	if _, err := c.Encode(p); err == nil {
		t.Error("invalid status accepted")
	}
	bad := Codec{SignatureBytes: 8}
	if _, err := bad.Encode(samplePayload()); err == nil {
		t.Error("signature without key accepted")
	}
	bad = Codec{Key: []byte("k"), SignatureBytes: 64}
	if _, err := bad.Encode(samplePayload()); err == nil {
		t.Error("oversized signature accepted")
	}
}

func TestStatusString(t *testing.T) {
	if StatusAccept.String() != "ACCEPT" || StatusReject.String() != "REJECT" || StatusUnknown.String() != "UNKNOWN" {
		t.Error("status strings wrong")
	}
	if Status(7).String() != "UNKNOWN" {
		t.Error("unknown status should stringify as UNKNOWN")
	}
}

func TestBalanceByte(t *testing.T) {
	for b := 0; b < 256; b++ {
		w := BalanceByte(byte(b))
		if bits.OnesCount64(w) != 8 {
			t.Fatalf("BalanceByte(%#x) = %#x not balanced", b, w)
		}
		got, ok := UnbalanceWord(w)
		if !ok || got != byte(b) {
			t.Fatalf("UnbalanceWord(BalanceByte(%#x)) = %#x, %v", b, got, ok)
		}
	}
}

func TestUnbalanceWordRejects(t *testing.T) {
	if _, ok := UnbalanceWord(0x0000); ok {
		t.Error("0x0000 accepted")
	}
	if _, ok := UnbalanceWord(0xFFFF); ok {
		t.Error("0xFFFF accepted")
	}
	if _, ok := UnbalanceWord(0x1_54AB); ok {
		t.Error("17-bit word accepted")
	}
	// Eight ones but not byte-complement structure.
	if _, ok := UnbalanceWord(0x0F0F); ok {
		t.Error("0x0F0F accepted: balanced but not byte‖complement")
	}
	// Valid structure must pass.
	if b, ok := UnbalanceWord(0x00FF); !ok || b != 0 {
		t.Error("0x00FF is the codeword of 0x00 and must decode")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#x, want 0x29b1", got)
	}
	if got := CRC16(nil); got != 0xFFFF {
		t.Fatalf("CRC16(empty) = %#x, want init value", got)
	}
}

// Property: encode/decode round-trips arbitrary payload field values.
func TestQuickRoundTrip(t *testing.T) {
	c := Codec{Key: []byte("quick-key"), SignatureBytes: 12}
	f := func(die uint64, speed uint8, statusRaw uint8, yw uint16, mfgRaw uint8) bool {
		p := Payload{
			Manufacturer: "ACME" + string(rune('A'+mfgRaw%26)),
			DieID:        die,
			SpeedGrade:   speed,
			Status:       []Status{StatusUnknown, StatusAccept, StatusReject}[statusRaw%3],
			YearWeek:     yw,
		}
		words, err := c.Encode(p)
		if err != nil {
			return false
		}
		got, rep, err := c.Decode(words)
		return err == nil && got == p && !rep.Tampered()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any number of 1->0 flips anywhere is detected.
func TestQuickClearingAttackDetected(t *testing.T) {
	c := Codec{Key: []byte("quick-key")}
	words, err := c.Encode(samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	f := func(flips []uint16) bool {
		if len(flips) == 0 {
			return true
		}
		tampered := append([]uint64(nil), words...)
		changed := false
		for _, f := range flips {
			wi := int(f>>4) % len(tampered)
			mask := uint64(1) << uint(f%16)
			if tampered[wi]&mask != 0 {
				tampered[wi] &^= mask
				changed = true
			}
		}
		if !changed {
			return true
		}
		_, rep, derr := c.Decode(tampered)
		return derr != nil || rep.Tampered()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
