// Package wmcode defines the watermark payload format Flashmark imprints:
// the manufacturing metadata the paper lists in §IV (manufacturer
// identifier, die identifier, speed grade, die-sort test status, date),
// an integrity CRC, and an HMAC-SHA-256 signature.
//
// Two properties make the encoding tamper-evident against the only
// physical attack available to a counterfeiter — stressing additional
// cells, which turns watermark bits from 1 ("good") to 0 ("bad"), never
// the reverse:
//
//   - Every payload byte is expanded to a 16-bit balanced codeword
//     (byte ‖ complement), which contains exactly eight 1-bits. Stressing
//     any extra cell breaks the balance, so a doctored watermark is
//     detectable without any key material.
//   - The keyed signature binds the payload fields, so even a tamper that
//     somehow preserved balance cannot produce a different valid payload.
package wmcode

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
)

// Status is the die-sort outcome imprinted into the watermark.
type Status uint8

// Die-sort statuses (paper §I: watermarking "accept" or "reject"
// prevents fall-out dice from re-entering the supply chain).
const (
	StatusUnknown Status = iota
	StatusAccept
	StatusReject
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusAccept:
		return "ACCEPT"
	case StatusReject:
		return "REJECT"
	default:
		return "UNKNOWN"
	}
}

// Payload is the manufacturing metadata carried by a watermark.
type Payload struct {
	Manufacturer string // up to 8 ASCII characters, e.g. "TC" for Trusted Chipmaker
	DieID        uint64 // die serial number
	SpeedGrade   uint8  // speed bin
	Status       Status // die-sort outcome
	YearWeek     uint16 // date code, e.g. 2614 for week 14 of 2026
}

// Codec encodes and decodes payloads.
type Codec struct {
	// Key is the manufacturer's signing key. Empty disables signatures.
	Key []byte
	// SignatureBytes is the truncated HMAC length (0 selects 8; max 32).
	SignatureBytes int
}

const (
	magic0, magic1 = 'F', 'M'
	version        = 1
	mfgBytes       = 8
	crcBytes       = 2
	headerBytes    = 2 /*magic*/ + 1 /*version*/ + 1 /*status*/ + 1 /*speed*/ + 1 /*siglen*/ + mfgBytes + 8 /*die*/ + 2 /*yearweek*/
)

func (c Codec) sigBytes() int {
	if len(c.Key) == 0 {
		return 0
	}
	if c.SignatureBytes == 0 {
		return 8
	}
	return c.SignatureBytes
}

// PayloadWords returns the number of 16-bit watermark words an encoded
// payload occupies with this codec, for replica planning.
func (c Codec) PayloadWords() int {
	return headerBytes + crcBytes + c.sigBytes()
}

// Validate reports whether the codec configuration is usable.
func (c Codec) Validate() error {
	if c.SignatureBytes < 0 || c.SignatureBytes > sha256.Size {
		return fmt.Errorf("wmcode: signature length %d out of range [0,%d]", c.SignatureBytes, sha256.Size)
	}
	if c.SignatureBytes > 0 && len(c.Key) == 0 {
		return errors.New("wmcode: signature length set but no key")
	}
	return nil
}

// Encode packs the payload into balanced 16-bit watermark words.
func (c Codec) Encode(p Payload) ([]uint64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(p.Manufacturer) > mfgBytes {
		return nil, fmt.Errorf("wmcode: manufacturer %q exceeds %d bytes", p.Manufacturer, mfgBytes)
	}
	for _, r := range p.Manufacturer {
		if r < 0x20 || r > 0x7E {
			return nil, fmt.Errorf("wmcode: manufacturer contains non-printable rune %q", r)
		}
	}
	if p.Status != StatusAccept && p.Status != StatusReject && p.Status != StatusUnknown {
		return nil, fmt.Errorf("wmcode: invalid status %d", p.Status)
	}
	sig := c.sigBytes()
	buf := make([]byte, 0, headerBytes+crcBytes+sig)
	buf = append(buf, magic0, magic1, version, byte(p.Status), p.SpeedGrade, byte(sig))
	mfg := make([]byte, mfgBytes)
	copy(mfg, p.Manufacturer)
	for i := len(p.Manufacturer); i < mfgBytes; i++ {
		mfg[i] = ' '
	}
	buf = append(buf, mfg...)
	for shift := 56; shift >= 0; shift -= 8 {
		buf = append(buf, byte(p.DieID>>uint(shift)))
	}
	buf = append(buf, byte(p.YearWeek>>8), byte(p.YearWeek))
	crc := CRC16(buf)
	buf = append(buf, byte(crc>>8), byte(crc))
	if sig > 0 {
		mac := hmac.New(sha256.New, c.Key)
		mac.Write(buf[:headerBytes]) // sign the fields, not the CRC
		buf = append(buf, mac.Sum(nil)[:sig]...)
	}
	words := make([]uint64, len(buf))
	for i, b := range buf {
		words[i] = BalanceByte(b)
	}
	return words, nil
}

// Report carries the integrity findings of a decode.
type Report struct {
	BalanceErrors int  // codewords violating the balanced-code invariant
	CRCOK         bool // header CRC matched
	SignatureOK   bool // HMAC matched (false when unsigned or no key)
	Signed        bool // the watermark carried a signature
	// InconsistentBits counts data bits whose fused replica vote was a
	// near-tie (only set by DecodeReplicas). Physical tampering — which
	// can clear a stored bit or its complement but never set one —
	// produces exactly this systematic split, while extraction noise
	// votes lopsidedly.
	InconsistentBits int
}

// Tampered reports whether the decode found evidence of tampering: any
// balance violation or fused-vote tie, a CRC failure, or a bad signature
// on signed data.
func (r Report) Tampered() bool {
	return r.BalanceErrors > 0 || r.InconsistentBits > 0 || !r.CRCOK || (r.Signed && !r.SignatureOK)
}

// Decode unpacks watermark words produced by Encode. It is tolerant of
// bit errors in the sense that it always returns its best-effort payload
// along with the Report; err is non-nil only for structurally
// undecodable input.
func (c Codec) Decode(words []uint64) (Payload, Report, error) {
	var rep Report
	if len(words) < headerBytes+crcBytes {
		return Payload{}, rep, fmt.Errorf("wmcode: %d words cannot hold a watermark", len(words))
	}
	buf := make([]byte, len(words))
	for i, w := range words {
		b, ok := UnbalanceWord(w)
		if !ok {
			rep.BalanceErrors++
		}
		buf[i] = b
	}
	return c.finishDecode(buf, rep)
}

// DecodeReplicas decodes R extracted replica views of one encoded payload
// by fusing, per data bit, all 2R physical observations: the bit's cell in
// each replica and its complement cell (the balanced code stores both).
// Extraction noise votes lopsidedly and is outvoted; physical tampering —
// stressing cells can clear a stored bit or its complement but never set
// one — produces a systematic near-tie, reported as InconsistentBits.
func (c Codec) DecodeReplicas(views [][]uint64) (Payload, Report, error) {
	var rep Report
	if len(views) == 0 {
		return Payload{}, rep, errors.New("wmcode: no replica views")
	}
	n := len(views[0])
	for _, v := range views {
		if len(v) != n {
			return Payload{}, rep, errors.New("wmcode: replica views have differing lengths")
		}
	}
	if n < headerBytes+crcBytes {
		return Payload{}, rep, fmt.Errorf("wmcode: %d words cannot hold a watermark", n)
	}
	r := len(views)
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		var b byte
		for bit := 0; bit < 8; bit++ {
			votes := 0
			for _, view := range views {
				w := view[i]
				if w>>(uint(bit)+8)&1 == 1 { // direct cell
					votes++
				}
				if w>>uint(bit)&1 == 0 { // complement cell
					votes++
				}
			}
			switch {
			case votes > r+1:
				b |= 1 << uint(bit)
			case votes < r-1:
				// bit stays 0
			default:
				rep.InconsistentBits++
				if votes > r {
					b |= 1 << uint(bit)
				}
			}
		}
		buf[i] = b
	}
	return c.finishDecode(buf, rep)
}

// finishDecode parses recovered payload bytes and fills the integrity
// report.
func (c Codec) finishDecode(buf []byte, rep Report) (Payload, Report, error) {
	if buf[0] != magic0 || buf[1] != magic1 {
		return Payload{}, rep, fmt.Errorf("wmcode: bad magic %#x %#x", buf[0], buf[1])
	}
	if buf[2] != version {
		return Payload{}, rep, fmt.Errorf("wmcode: unsupported version %d", buf[2])
	}
	var p Payload
	p.Status = Status(buf[3])
	p.SpeedGrade = buf[4]
	sig := int(buf[5])
	p.Manufacturer = strings.TrimRight(string(buf[6:6+mfgBytes]), " ")
	for i := 0; i < 8; i++ {
		p.DieID = p.DieID<<8 | uint64(buf[6+mfgBytes+i])
	}
	p.YearWeek = uint16(buf[headerBytes-2])<<8 | uint16(buf[headerBytes-1])
	crcGot := uint16(buf[headerBytes])<<8 | uint16(buf[headerBytes+1])
	rep.CRCOK = CRC16(buf[:headerBytes]) == crcGot
	if sig > 0 {
		rep.Signed = true
		if sig > sha256.Size || headerBytes+crcBytes+sig > len(buf) {
			return p, rep, fmt.Errorf("wmcode: signature length %d inconsistent with %d payload bytes", sig, len(buf))
		}
		if len(c.Key) > 0 {
			mac := hmac.New(sha256.New, c.Key)
			mac.Write(buf[:headerBytes])
			want := mac.Sum(nil)[:sig]
			rep.SignatureOK = hmac.Equal(want, buf[headerBytes+crcBytes:headerBytes+crcBytes+sig])
		}
	}
	return p, rep, nil
}

// BalanceByte expands a byte into a 16-bit balanced codeword
// (byte ‖ complement), which always has exactly eight 1-bits.
func BalanceByte(b byte) uint64 {
	return uint64(b)<<8 | uint64(^b)&0xFF
}

// UnbalanceWord recovers the byte from a balanced codeword and reports
// whether the codeword was intact. On violation it returns the
// bit-wise majority-less best effort (the data half).
func UnbalanceWord(w uint64) (byte, bool) {
	hi := byte(w >> 8)
	lo := byte(w)
	return hi, hi == ^lo && w>>16 == 0
}

// CRC16 computes the CCITT-FALSE CRC-16 of data.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
