package wmcode

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode feeds arbitrary word streams to the codec: it must never
// panic, and anything it accepts as untampered must re-encode to the
// same words under the same codec.
func FuzzDecode(f *testing.F) {
	c := Codec{Key: []byte("fuzz-key")}
	words, err := c.Encode(Payload{Manufacturer: "TC", DieID: 1, Status: StatusAccept})
	if err != nil {
		f.Fatal(err)
	}
	seed := make([]byte, len(words)*2)
	for i, w := range words {
		binary.LittleEndian.PutUint16(seed[2*i:], uint16(w))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		ws := make([]uint64, len(data)/2)
		for i := range ws {
			ws[i] = uint64(binary.LittleEndian.Uint16(data[2*i:]))
		}
		p, rep, err := c.Decode(ws)
		if err != nil || rep.Tampered() {
			return
		}
		// Accepted clean: must round-trip.
		reenc, eerr := c.Encode(p)
		if eerr != nil {
			t.Fatalf("clean decode of %v re-encode failed: %v", p, eerr)
		}
		for i := range reenc {
			if reenc[i] != ws[i] {
				t.Fatalf("clean decode not canonical at word %d: %#x vs %#x", i, reenc[i], ws[i])
			}
		}
	})
}

// FuzzDecodeReplicas stresses the fused decoder with arbitrary replica
// counts and contents.
func FuzzDecodeReplicas(f *testing.F) {
	c := Codec{}
	words, err := c.Encode(Payload{Manufacturer: "AB", DieID: 2, Status: StatusReject})
	if err != nil {
		f.Fatal(err)
	}
	seed := make([]byte, len(words)*2)
	for i, w := range words {
		binary.LittleEndian.PutUint16(seed[2*i:], uint16(w))
	}
	f.Add(uint8(3), seed)
	f.Add(uint8(1), []byte{1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, copies uint8, data []byte) {
		r := int(copies%8) + 1
		per := len(data) / 2 / r
		if per == 0 {
			return
		}
		views := make([][]uint64, r)
		for v := range views {
			views[v] = make([]uint64, per)
			for i := range views[v] {
				views[v][i] = uint64(binary.LittleEndian.Uint16(data[2*(v*per+i):]))
			}
		}
		_, _, _ = c.DecodeReplicas(views) // must not panic
	})
}
