package flashctl

import (
	"math"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/rng"
	"github.com/flashmark/flashmark/internal/vclock"
)

// UnlockKey is the password accepted by Unlock, mirroring the MSP430
// FCTL password convention: any write to the flash control registers
// with the wrong high byte triggers an access violation.
const UnlockKey = 0xA5

// Controller is the embedded flash memory controller. It owns the array
// state, applies the floating-gate physics to every operation, enforces
// the lock protocol, and charges virtual time.
type Controller struct {
	array  *nor.Array
	model  *floatgate.Model
	timing Timing
	clock  *vclock.Clock
	ledger *vclock.Ledger
	noise  *rng.Stream

	locked   bool
	ageYears float64
	tempC    float64
	stats    Stats
	trace    *vclock.Trace

	// baseCache memoizes the immutable per-cell manufacturing parameters
	// of touched segments. Base derivation is a pure function of the chip
	// seed, so caching is bit-exact; it removes the per-cell RNG work
	// from every partial erase and tau sweep (~10x on those paths).
	baseCache map[int][]floatgate.CellBase

	// Fast-path state (see fastphys.go). physRef selects the reference
	// per-cell path; phys holds per-segment deferral state; the rest is
	// reusable scratch so steady-state operations allocate nothing.
	physRef    bool
	phys       map[int]*fastSeg
	maxScratch floatgate.MaxTauScratch
	gidScratch []int32
	wearGroups []wearGroup
}

// Stats counts controller activity, like the diagnostic counters of a
// real flash controller driver.
type Stats struct {
	Erases         int // full segment/mass erase commands
	PartialErases  int // erases terminated by emergency exit
	AdaptiveErases int // erases terminated early after verify
	ProgramWords   int // words programmed (single or block mode)
	ReadWords      int // words read
	EmergencyExits int // emergency exit commands issued
	AccessErrors   int // rejected commands (lock violations, bad addresses)
}

// Config assembles a Controller.
type Config struct {
	Array  *nor.Array
	Model  *floatgate.Model
	Timing Timing
	Clock  *vclock.Clock
	Ledger *vclock.Ledger
	// NoiseSeed seeds the read-noise stream. Reads of metastable cells
	// (after a partial erase) are stochastic but reproducible.
	NoiseSeed uint64
}

// New creates a controller. Array and Model are required; Clock and
// Ledger default to fresh instances.
func New(cfg Config) (*Controller, error) {
	if cfg.Array == nil {
		return nil, &Error{Op: "new", Addr: -1, Msg: "nil array"}
	}
	if cfg.Model == nil {
		return nil, &Error{Op: "new", Addr: -1, Msg: "nil model"}
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = &vclock.Clock{}
	}
	ledger := cfg.Ledger
	if ledger == nil {
		ledger = &vclock.Ledger{}
	}
	return &Controller{
		array:  cfg.Array,
		model:  cfg.Model,
		timing: cfg.Timing,
		clock:  clock,
		ledger: ledger,
		noise:  rng.New(cfg.NoiseSeed ^ cfg.Model.Seed()),
		locked: true,
		tempC:  25,
	}, nil
}

// Array exposes the underlying array (read-mostly; mutate through the
// controller to keep physics and timing consistent). Any lazily deferred
// fast-path margins are materialized first, so external observers always
// see fully concrete state.
func (c *Controller) Array() *nor.Array {
	c.flushPhysics()
	return c.array
}

// Model returns the physics model in use.
func (c *Controller) Model() *floatgate.Model { return c.model }

// Timing returns the controller's timing configuration.
func (c *Controller) Timing() Timing { return c.timing }

// Clock returns the controller's virtual clock.
func (c *Controller) Clock() *vclock.Clock { return c.clock }

// Ledger returns the controller's time ledger.
func (c *Controller) Ledger() *vclock.Ledger { return c.ledger }

// Stats returns a copy of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// Locked reports whether the controller rejects erase/program commands.
func (c *Controller) Locked() bool { return c.locked }

// AgeYears returns the chip's unpowered-storage age.
func (c *Controller) AgeYears() float64 { return c.ageYears }

// SetAgeYears sets the chip's storage age. Aging is monotone: attempts to
// rejuvenate are rejected. Age slows the erase response further on worn
// cells (retention drift, an extension hook for watermark-longevity
// studies; the paper's experiments run at age 0).
func (c *Controller) SetAgeYears(years float64) error {
	if years < c.ageYears {
		return &Error{Op: "age", Addr: -1, Msg: "chips do not get younger"}
	}
	c.ageYears = years
	return nil
}

// AmbientTempC returns the ambient temperature the chip operates at
// (25 °C unless set).
func (c *Controller) AmbientTempC() float64 { return c.tempC }

// SetAmbientTempC sets the operating temperature (erase physics is
// thermally assisted; see floatgate.TempFactor). The commercial range
// 0–70 °C is accepted.
func (c *Controller) SetAmbientTempC(t float64) error {
	if t < 0 || t > 70 {
		return &Error{Op: "temp", Addr: -1, Msg: "temperature outside the commercial 0-70 C range"}
	}
	c.tempC = t
	return nil
}

// segBases returns the memoized immutable parameters of every cell of
// seg.
func (c *Controller) segBases(seg int) []floatgate.CellBase {
	bases, ok := c.baseCache[seg]
	if !ok {
		cells := c.array.Geometry().CellsPerSegment()
		bases = c.model.BasesInto(seg, cells, nil)
		if c.baseCache == nil {
			c.baseCache = make(map[int][]floatgate.CellBase)
		}
		c.baseCache[seg] = bases
	}
	return bases
}

// cellBase returns the memoized immutable parameters of cell i of seg.
func (c *Controller) cellBase(seg, i int) floatgate.CellBase {
	return c.segBases(seg)[i]
}

// cellTau returns the effective erase crossing time of cell i of seg,
// including retention drift at the chip's current age and the ambient
// temperature factor.
func (c *Controller) cellTau(seg, i int, wear float64) float64 {
	tau := c.model.Tau(c.cellBase(seg, i), wear)
	if c.ageYears > 0 {
		tau += c.model.RetentionShiftUs(wear, c.ageYears)
	}
	return tau * c.model.TempFactor(c.AmbientTempC())
}

// Unlock accepts the FCTL password and enables erase/program commands.
func (c *Controller) Unlock(key byte) error {
	if key != UnlockKey {
		c.stats.AccessErrors++
		c.locked = true
		return &Error{Op: "unlock", Addr: -1, Msg: "access violation: bad key"}
	}
	c.locked = false
	return nil
}

// Lock re-enables write protection.
func (c *Controller) Lock() { c.locked = true }

func (c *Controller) charge(class vclock.OpClass, d time.Duration) {
	c.clock.Advance(c.ledger.Charge(class, d))
}

// SetTrace attaches an operation trace; nil detaches. Reads are not
// traced (they would dominate the event stream); every erase/program
// class operation is, with its virtual start time and duration.
func (c *Controller) SetTrace(t *vclock.Trace) { c.trace = t }

// Trace returns the attached trace, if any.
func (c *Controller) Trace() *vclock.Trace { return c.trace }

// chargeOp charges the setup overhead plus the operation itself and
// records the operation in the trace.
func (c *Controller) chargeOp(class vclock.OpClass, addr int, d time.Duration) {
	c.charge(vclock.OpOverhead, c.timing.OpSetup)
	start := c.clock.Now()
	c.charge(class, d)
	if c.trace != nil {
		c.trace.Record(class, addr, start, d)
	}
}

func (c *Controller) requireUnlocked(op string, addr int) error {
	if c.locked {
		c.stats.AccessErrors++
		return &Error{Op: op, Addr: addr, Msg: "controller locked"}
	}
	return nil
}

func (c *Controller) segmentOf(op string, addr int) (int, error) {
	seg, err := c.array.Geometry().SegmentOfAddr(addr)
	if err != nil {
		c.stats.AccessErrors++
		return 0, &Error{Op: op, Addr: addr, Msg: err.Error()}
	}
	return seg, nil
}

// eraseCells applies the physical effect of a completed erase to every
// cell of a segment: wear accrues per the cell's prior state and the cell
// ends deeply erased.
func (c *Controller) eraseCells(seg int) {
	if !c.physRef {
		c.eraseCellsFast(seg)
		return
	}
	geom := c.array.Geometry()
	cells := geom.CellsPerSegment()
	base := seg * cells
	for i := 0; i < cells; i++ {
		cell := base + i
		c.array.AddWear(cell, c.model.EraseWear(c.array.Programmed(cell)))
		c.array.SetMargin(cell, float64(nor.MarginErased))
	}
}

// EraseSegment performs a nominal full segment erase of the segment
// containing addr.
func (c *Controller) EraseSegment(addr int) error {
	if err := c.requireUnlocked("erase", addr); err != nil {
		return err
	}
	seg, err := c.segmentOf("erase", addr)
	if err != nil {
		return err
	}
	c.eraseCells(seg)
	c.stats.Erases++
	c.chargeOp(vclock.OpErase, addr, c.timing.SegmentErase)
	return nil
}

// MassEraseBank erases every segment of the bank containing addr.
func (c *Controller) MassEraseBank(addr int) error {
	if err := c.requireUnlocked("mass-erase", addr); err != nil {
		return err
	}
	geom := c.array.Geometry()
	seg, err := c.segmentOf("mass-erase", addr)
	if err != nil {
		return err
	}
	bank, err := geom.BankOfSegment(seg)
	if err != nil {
		c.stats.AccessErrors++
		return &Error{Op: "mass-erase", Addr: addr, Msg: err.Error()}
	}
	for s := bank * geom.SegmentsPerBank; s < (bank+1)*geom.SegmentsPerBank; s++ {
		c.eraseCells(s)
	}
	c.stats.Erases++
	c.chargeOp(vclock.OpErase, addr, c.timing.MassErase)
	return nil
}

// EraseSegmentAdaptive erases the segment containing addr but terminates
// the erase with an emergency exit as soon as every cell has physically
// crossed to the erased state (plus a settle margin), instead of waiting
// out the nominal erase time. The paper's accelerated imprint procedure
// (§V) uses this: the premature exit does not change the wear outcome
// because the cells have completed their charge transfer.
// It returns the erase pulse duration actually spent.
func (c *Controller) EraseSegmentAdaptive(addr int) (time.Duration, error) {
	if err := c.requireUnlocked("erase-adaptive", addr); err != nil {
		return 0, err
	}
	seg, err := c.segmentOf("erase-adaptive", addr)
	if err != nil {
		return 0, err
	}
	geom := c.array.Geometry()
	cells := geom.CellsPerSegment()
	base := seg * cells
	// The erase must run until the slowest currently-programmed cell
	// crosses; erased cells impose no wait.
	maxTau := 0.0
	if !c.physRef {
		maxTau = c.adaptiveMaxTau(seg)
	} else {
		for i := 0; i < cells; i++ {
			cell := base + i
			if !c.array.Programmed(cell) {
				continue
			}
			tau := c.cellTau(seg, i, c.array.Wear(cell))
			if tau > maxTau {
				maxTau = tau
			}
		}
	}
	c.eraseCells(seg)
	c.stats.AdaptiveErases++
	c.stats.EmergencyExits++
	pulse := time.Duration(maxTau*float64(time.Microsecond)) + c.timing.AdaptiveEraseSettle
	if pulse > c.timing.SegmentErase {
		pulse = c.timing.SegmentErase
	}
	c.chargeOp(vclock.OpErase, addr, pulse)
	return pulse, nil
}

// PartialEraseSegment initiates a segment erase, waits for the given
// duration, and issues the emergency exit command (paper §III). Cells
// whose erase crossing time exceeds the pulse remain programmed; cells
// near the boundary are left metastable and read noisily. Wear accrues
// as for a full erase: the stress is applied even if the charge transfer
// is incomplete.
func (c *Controller) PartialEraseSegment(addr int, pulse time.Duration) error {
	if err := c.requireUnlocked("partial-erase", addr); err != nil {
		return err
	}
	if pulse < 0 {
		c.stats.AccessErrors++
		return &Error{Op: "partial-erase", Addr: addr, Msg: "negative pulse duration"}
	}
	seg, err := c.segmentOf("partial-erase", addr)
	if err != nil {
		return err
	}
	if pulse >= c.timing.SegmentErase {
		// A pulse at or beyond the nominal time is a plain erase.
		c.eraseCells(seg)
		c.stats.Erases++
		c.chargeOp(vclock.OpErase, addr, c.timing.SegmentErase)
		return nil
	}
	geom := c.array.Geometry()
	cells := geom.CellsPerSegment()
	base := seg * cells
	pulseUs := float64(pulse) / float64(time.Microsecond)
	if !c.physRef {
		c.partialEraseFast(seg, pulseUs)
	} else {
		for i := 0; i < cells; i++ {
			cell := base + i
			margin := c.array.Margin(cell)
			wasProgrammed := margin < 0
			switch {
			case margin <= float64(nor.MarginProgrammed):
				// Fully programmed: the erase ran for pulseUs against a
				// crossing time evaluated at the cell's pre-pulse wear.
				tau := c.cellTau(seg, i, c.array.Wear(cell))
				c.array.SetMargin(cell, pulseUs-tau)
			case margin >= float64(nor.MarginErased):
				// Already erased: stays erased.
			default:
				// Metastable from an earlier partial erase: the new pulse
				// continues the interrupted charge transfer.
				c.array.SetMargin(cell, margin+pulseUs)
			}
			c.array.AddWear(cell, c.model.EraseWear(wasProgrammed))
		}
	}
	c.stats.PartialErases++
	c.stats.EmergencyExits++
	c.chargeOp(vclock.OpPartialErase, addr, pulse)
	return nil
}

// PartialProgramSegment initiates programming of every cell of the
// segment containing addr and aborts after the given pulse (the
// prior-work FFD characterization primitive [6]; the counterpart of
// PartialEraseSegment on the program side). Cells whose program crossing
// time is within the pulse flip to programmed; others keep their state;
// boundary cells are left metastable. The segment should normally be
// erased first so the sweep starts from a known state.
func (c *Controller) PartialProgramSegment(addr int, pulse time.Duration) error {
	if err := c.requireUnlocked("partial-program", addr); err != nil {
		return err
	}
	if pulse < 0 {
		c.stats.AccessErrors++
		return &Error{Op: "partial-program", Addr: addr, Msg: "negative pulse duration"}
	}
	seg, err := c.segmentOf("partial-program", addr)
	if err != nil {
		return err
	}
	// Partial programming inspects every margin at full precision, so any
	// deferred fast-path margins are materialized up front (the primitive
	// is a prior-work comparator, not on the watermark hot path).
	if fs := c.fastSegIfLive(seg); fs != nil {
		fs.flush(c)
	}
	geom := c.array.Geometry()
	cells := geom.CellsPerSegment()
	base := seg * cells
	pulseUs := float64(pulse) / float64(time.Microsecond)
	for i := 0; i < cells; i++ {
		cell := base + i
		margin := c.array.Margin(cell)
		if margin <= float64(nor.MarginProgrammed) {
			continue // already programmed
		}
		progTau := c.model.ProgTau(c.cellBase(seg, i), c.array.Wear(cell))
		// Margin convention: positive reads erased. The cell's distance
		// from programming is progTau - pulse.
		newMargin := progTau - pulseUs
		if newMargin < margin {
			c.array.SetMargin(cell, newMargin)
		}
		c.array.AddWear(cell, c.model.ProgramWear())
	}
	c.stats.ProgramWords += geom.WordsPerSegment()
	c.stats.EmergencyExits++
	c.chargeOp(vclock.OpProgram, addr, pulse)
	return nil
}

func (c *Controller) wordAddr(op string, addr int) (seg, word int, err error) {
	geom := c.array.Geometry()
	if addr%geom.WordBytes != 0 {
		c.stats.AccessErrors++
		return 0, 0, &Error{Op: op, Addr: addr, Msg: "unaligned word address"}
	}
	seg, gerr := geom.SegmentOfAddr(addr)
	if gerr != nil {
		c.stats.AccessErrors++
		return 0, 0, &Error{Op: op, Addr: addr, Msg: gerr.Error()}
	}
	word = (addr - seg*geom.SegmentBytes) / geom.WordBytes
	return seg, word, nil
}

// programWordCells applies the physical effect of programming `value`
// into (seg, word): bits that are 0 in value are driven to the programmed
// state; bits that are 1 leave the cell untouched (flash programming can
// only move cells toward '0'; going back requires an erase, §II-B).
func (c *Controller) programWordCells(seg, word int, value uint64) {
	geom := c.array.Geometry()
	bits := geom.WordBits()
	fs := c.fastSegIfLive(seg)
	for b := 0; b < bits; b++ {
		if value&(1<<uint(b)) != 0 {
			continue
		}
		cell := geom.CellIndex(seg, word, b)
		if fs != nil {
			if local := int32(cell - fs.seg*fs.cells); fs.group[local] >= 0 {
				// Programming overwrites the pending margin unread.
				fs.clearDeferred(local)
			}
		}
		c.array.AddWear(cell, c.model.ProgramWear())
		c.array.SetMargin(cell, float64(nor.MarginProgrammed))
	}
}

// ProgramWord programs one word at a word-aligned byte address in
// single-word mode.
func (c *Controller) ProgramWord(addr int, value uint64) error {
	if err := c.requireUnlocked("program", addr); err != nil {
		return err
	}
	seg, word, err := c.wordAddr("program", addr)
	if err != nil {
		return err
	}
	c.programWordCells(seg, word, value)
	c.stats.ProgramWords++
	c.chargeOp(vclock.OpProgram, addr, c.timing.WordProgram)
	return nil
}

// ProgramBlock programs consecutive words starting at a word-aligned byte
// address using the controller's faster block-write mode. The block must
// not cross a segment boundary (matching the MSP430 row restriction).
func (c *Controller) ProgramBlock(addr int, values []uint64) error {
	if err := c.requireUnlocked("program-block", addr); err != nil {
		return err
	}
	if len(values) == 0 {
		return nil
	}
	seg, word, err := c.wordAddr("program-block", addr)
	if err != nil {
		return err
	}
	geom := c.array.Geometry()
	if word+len(values) > geom.WordsPerSegment() {
		c.stats.AccessErrors++
		return &Error{Op: "program-block", Addr: addr, Msg: "block crosses segment boundary"}
	}
	for i, v := range values {
		c.programWordCells(seg, word+i, v)
	}
	c.stats.ProgramWords += len(values)
	c.chargeOp(vclock.OpProgram, addr, c.timing.BlockProgramFirst+
		time.Duration(len(values)-1)*c.timing.BlockProgramNext)
	return nil
}

// ReadWord reads the word at a word-aligned byte address. Reads work
// regardless of the lock state. Metastable cells (interrupted erase)
// sample their value per read; stable cells read deterministically.
func (c *Controller) ReadWord(addr int) (uint64, error) {
	seg, word, err := c.wordAddr("read", addr)
	if err != nil {
		return 0, err
	}
	geom := c.array.Geometry()
	bits := geom.WordBits()
	fs := c.fastSegIfLive(seg)
	cellBase := seg * geom.CellsPerSegment()
	var v uint64
	for b := 0; b < bits; b++ {
		cell := geom.CellIndex(seg, word, b)
		var one bool
		if fs != nil && fs.group[cell-cellBase] >= 0 {
			one = c.readDeferred(fs, int32(cell-cellBase))
		} else {
			margin := c.array.Margin(cell)
			switch {
			case margin >= float64(nor.MarginErased):
				one = true
			case margin <= float64(nor.MarginProgrammed):
				one = false
			default:
				one = c.model.SampleReadAt(margin, c.array.Wear(cell), c.noise)
			}
		}
		if one {
			v |= 1 << uint(b)
		}
	}
	c.stats.ReadWords++
	c.charge(vclock.OpRead, c.timing.WordRead)
	return v, nil
}

// ReadSegment reads every word of the segment containing addr, in order.
func (c *Controller) ReadSegment(addr int) ([]uint64, error) {
	return c.ReadSegmentInto(addr, nil)
}

// ReadSegmentInto reads every word of the segment containing addr into
// dst, reusing its capacity — the allocation-free form for callers that
// read segments in a loop.
func (c *Controller) ReadSegmentInto(addr int, dst []uint64) ([]uint64, error) {
	seg, err := c.segmentOf("read-segment", addr)
	if err != nil {
		return nil, err
	}
	geom := c.array.Geometry()
	base := seg * geom.SegmentBytes
	words := geom.WordsPerSegment()
	if cap(dst) < words {
		dst = make([]uint64, words)
	}
	dst = dst[:words]
	for w := range dst {
		v, err := c.ReadWord(base + w*geom.WordBytes)
		if err != nil {
			return nil, err
		}
		dst[w] = v
	}
	return dst, nil
}

// StressSegmentWords fast-forwards n imprint cycles over one segment:
// each cycle is an erase of the whole segment followed by programming the
// given word values (the Fig. 7 loop body). The physical outcome is
// bit-for-bit identical to issuing the commands n times — wear per cycle
// is state-independent after the first cycle — but runs in O(cells)
// instead of O(cells·n). Time is charged exactly as n adaptive or nominal
// cycles would be; the adaptive erase pulse durations are integrated in
// closed form against the growing wear.
//
// This is the simulator's acceleration of the hardware-native loop, used
// by the imprint procedure for large cycle counts; equivalence against
// the literal loop is covered by tests.
func (c *Controller) StressSegmentWords(addr int, values []uint64, n int, adaptive bool) error {
	if err := c.requireUnlocked("stress", addr); err != nil {
		return err
	}
	if n < 0 {
		c.stats.AccessErrors++
		return &Error{Op: "stress", Addr: addr, Msg: "negative cycle count"}
	}
	if n == 0 {
		return nil
	}
	seg, err := c.segmentOf("stress", addr)
	if err != nil {
		return err
	}
	geom := c.array.Geometry()
	if len(values) != geom.WordsPerSegment() {
		c.stats.AccessErrors++
		return &Error{Op: "stress", Addr: addr, Msg: "values must cover the whole segment"}
	}
	sub := segmentCells{c: c, seg: seg, base: seg * geom.CellsPerSegment(), cells: geom.CellsPerSegment()}
	one := func(i int) bool {
		return values[i/geom.WordBits()]&(1<<uint(i%geom.WordBits())) != 0
	}
	wear := device.StressWear{
		FullWear:  c.model.EraseWear(true),
		EraseOnly: c.model.EraseWear(false),
		Program:   c.model.ProgramWear(),
	}
	device.ApplyStress(sub, one, n, wear)

	// Time accounting.
	c.stats.ProgramWords += n * len(values)
	progTime := c.timing.BlockProgramFirst + time.Duration(len(values)-1)*c.timing.BlockProgramNext
	c.charge(vclock.OpOverhead, time.Duration(2*n)*c.timing.OpSetup)
	c.charge(vclock.OpProgram, time.Duration(n)*progTime)
	if !adaptive {
		c.stats.Erases += n
		c.charge(vclock.OpErase, time.Duration(n)*c.timing.SegmentErase)
		return nil
	}
	c.stats.AdaptiveErases += n
	c.stats.EmergencyExits += n
	meanTau := device.MeanAdaptiveTauUs(sub, one, n, wear)
	pulse := time.Duration(meanTau*float64(time.Microsecond)) + c.timing.AdaptiveEraseSettle
	if pulse > c.timing.SegmentErase {
		pulse = c.timing.SegmentErase
	}
	c.charge(vclock.OpErase, time.Duration(n)*pulse)
	return nil
}

// segmentCells adapts one segment of the controller's array to the
// shared closed-form stress kernel (package device).
type segmentCells struct {
	c     *Controller
	seg   int
	base  int
	cells int
}

func (s segmentCells) Cells() int               { return s.cells }
func (s segmentCells) Programmed(i int) bool    { return s.c.cellProgrammed(s.seg, s.base+i) }
func (s segmentCells) Wear(i int) float64       { return s.c.array.Wear(s.base + i) }
func (s segmentCells) AddWear(i int, w float64) { s.c.array.AddWear(s.base+i, w) }
func (s segmentCells) SetErased(i int) {
	s.c.setCellMargin(s.seg, s.base+i, float64(nor.MarginErased))
}
func (s segmentCells) SetProgrammed(i int) {
	s.c.setCellMargin(s.seg, s.base+i, float64(nor.MarginProgrammed))
}
func (s segmentCells) TauAt(i int, wear float64) float64 { return s.c.cellTau(s.seg, i, wear) }

// WornCellCount returns how many cells of the segment containing addr
// have exceeded the datasheet endurance — the reliability flag a
// production driver would expose.
func (c *Controller) WornCellCount(addr int) (int, error) {
	seg, err := c.segmentOf("worn", addr)
	if err != nil {
		return 0, err
	}
	geom := c.array.Geometry()
	cells := geom.CellsPerSegment()
	base := seg * cells
	worn := 0
	for i := 0; i < cells; i++ {
		if c.model.Worn(c.array.Wear(base + i)) {
			worn++
		}
	}
	return worn, nil
}

// SegmentMeanTau returns the mean and max erase crossing times across a
// segment at its current wear — a diagnostic used by characterization
// tooling and tests.
func (c *Controller) SegmentMeanTau(addr int) (mean, maxTau float64, err error) {
	seg, err := c.segmentOf("tau", addr)
	if err != nil {
		return 0, 0, err
	}
	geom := c.array.Geometry()
	cells := geom.CellsPerSegment()
	base := seg * cells
	maxTau = -math.MaxFloat64
	for i := 0; i < cells; i++ {
		tau := c.cellTau(seg, i, c.array.Wear(base+i))
		mean += tau
		if tau > maxTau {
			maxTau = tau
		}
	}
	mean /= float64(cells)
	return mean, maxTau, nil
}
