package flashctl

import (
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/vclock"
)

func TestRegisterLockProtocol(t *testing.T) {
	c := newTestController(t)
	r := c.Registers()
	// Initially locked.
	if r.Read(FCTL3)&BitLOCK == 0 {
		t.Fatal("LOCK should read set on a fresh controller")
	}
	// Operation before unlock: dummy write fails (controller locked).
	if err := r.Write(FCTL1, FCTLPassword|BitERASE); err != nil {
		t.Fatal(err)
	}
	if err := r.DummyWrite(0, 0); err == nil {
		t.Fatal("erase while locked accepted")
	}
	// Clear LOCK with the password.
	if err := r.Write(FCTL3, FCTLPassword); err != nil {
		t.Fatal(err)
	}
	if r.Read(FCTL3)&BitLOCK != 0 {
		t.Fatal("LOCK should read clear after unlock")
	}
	if err := r.DummyWrite(0, 0); err != nil {
		t.Fatalf("erase after unlock: %v", err)
	}
	// Re-lock.
	if err := r.Write(FCTL3, FCTLPassword|BitLOCK); err != nil {
		t.Fatal(err)
	}
	if err := r.DummyWrite(0, 0); err == nil {
		t.Fatal("erase after re-lock accepted")
	}
}

func TestRegisterPasswordViolation(t *testing.T) {
	c := newTestController(t)
	r := c.Registers()
	if err := r.Write(FCTL3, FCTLPassword); err != nil {
		t.Fatal(err)
	}
	// A write with the wrong password must fail AND re-lock.
	if err := r.Write(FCTL1, 0x5A00|BitERASE); err == nil {
		t.Fatal("bad password accepted")
	}
	if !c.Locked() {
		t.Fatal("access violation should re-lock the controller")
	}
}

func TestRegisterProgramFlow(t *testing.T) {
	c := newTestController(t)
	r := c.Registers()
	if err := r.Write(FCTL3, FCTLPassword); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(FCTL1, FCTLPassword|BitWRT); err != nil {
		t.Fatal(err)
	}
	if err := r.DummyWrite(4, 0x5443); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadWord(4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5443 {
		t.Fatalf("register-programmed word = %#x", v)
	}
}

func TestRegisterNoOperationSelected(t *testing.T) {
	c := newTestController(t)
	r := c.Registers()
	if err := r.Write(FCTL3, FCTLPassword); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(FCTL1, FCTLPassword); err != nil {
		t.Fatal(err)
	}
	if err := r.DummyWrite(0, 0); err == nil {
		t.Fatal("dummy write with no op selected accepted")
	}
}

func TestRegisterMassErase(t *testing.T) {
	c := newTestController(t)
	r := c.Registers()
	mustUnlock(t, c)
	if err := c.ProgramWord(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(FCTL1, FCTLPassword|BitMERAS); err != nil {
		t.Fatal(err)
	}
	if err := r.DummyWrite(0, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.ReadWord(0); v != 0xFFFF {
		t.Fatalf("after register mass erase = %#x", v)
	}
}

func TestRegisterEmergencyExitPartialErase(t *testing.T) {
	// The firmware partial-erase pattern: program all, arm EMEX on a
	// timer, start the erase via dummy write.
	c := newTestController(t)
	r := c.Registers()
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	zeros := make([]uint64, geom.WordsPerSegment())
	if err := c.ProgramBlock(0, zeros); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(FCTL1, FCTLPassword|BitERASE); err != nil {
		t.Fatal(err)
	}
	if err := r.ArmEmergencyExit(21 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().PartialErases
	if err := r.DummyWrite(0, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().PartialErases != before+1 {
		t.Fatal("EMEX dummy write did not perform a partial erase")
	}
	// The arm is one-shot: the next erase is a full one.
	if err := r.DummyWrite(0, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().PartialErases != before+1 {
		t.Fatal("EMEX arm should be one-shot")
	}
	if err := r.ArmEmergencyExit(0); err == nil {
		t.Fatal("zero abort delay accepted")
	}
}

func TestRegisterEquivalenceWithMethodAPI(t *testing.T) {
	// The same imprint cycle issued through registers and through the
	// method API must leave identical physical state.
	viaMethods := newSeededController(t, 77)
	viaRegs := newSeededController(t, 77)
	geom := viaMethods.Array().Geometry()

	mustUnlock(t, viaMethods)
	for cycle := 0; cycle < 5; cycle++ {
		if err := viaMethods.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < geom.WordsPerSegment(); w++ {
			if err := viaMethods.ProgramWord(w*2, 0x5443); err != nil {
				t.Fatal(err)
			}
		}
	}

	r := viaRegs.Registers()
	if err := r.Write(FCTL3, FCTLPassword); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 5; cycle++ {
		if err := r.Write(FCTL1, FCTLPassword|BitERASE); err != nil {
			t.Fatal(err)
		}
		if err := r.DummyWrite(0, 0); err != nil {
			t.Fatal(err)
		}
		if err := r.Write(FCTL1, FCTLPassword|BitWRT); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < geom.WordsPerSegment(); w++ {
			if err := r.DummyWrite(w*2, 0x5443); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < geom.CellsPerSegment(); i++ {
		if viaMethods.Array().Wear(i) != viaRegs.Array().Wear(i) {
			t.Fatalf("wear diverged at cell %d", i)
		}
	}
}

func TestRegisterReadDefaults(t *testing.T) {
	c := newTestController(t)
	r := c.Registers()
	if got := r.Read(FCTL4); got != FCTLPassword {
		t.Errorf("FCTL4 = %#x", got)
	}
	if err := r.Write(FCTL4, FCTLPassword); err != nil {
		t.Errorf("FCTL4 write: %v", err)
	}
	if err := r.Write(Register(99), FCTLPassword); err == nil {
		t.Error("unknown register accepted")
	}
}

func TestControllerTraceRecordsOps(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	tr := vclock.NewTrace(0)
	c.SetTrace(tr)
	if c.Trace() != tr {
		t.Fatal("Trace accessor broken")
	}
	if err := c.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ProgramWord(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.PartialEraseSegment(0, 21*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Class != vclock.OpErase || events[1].Class != vclock.OpProgram || events[2].Class != vclock.OpPartialErase {
		t.Errorf("classes = %v %v %v", events[0].Class, events[1].Class, events[2].Class)
	}
	// Events are ordered and non-overlapping in virtual time.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start+events[i-1].Dur {
			t.Errorf("events overlap: %v then %v", events[i-1], events[i])
		}
	}
	c.SetTrace(nil)
	if err := c.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events()) != 3 {
		t.Error("detached trace still recorded")
	}
}
