package flashctl

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
)

// Differential fuzz of the batched physics fast path against the
// per-cell reference path: twin controllers with the same die seed and
// noise seed run one seeded-random operation sequence, and every
// observable — read values, adaptive pulse durations, mean-tau queries,
// final margins and wear to the bit, stats, virtual time — must match.
// Reads are compared op-by-op, which pins the noise-stream *position*:
// a fast path that consumed one extra (or one fewer) noise sample would
// desynchronize every later metastable read.

func twinControllers(t *testing.T, seed uint64) (fast, ref *Controller) {
	t.Helper()
	build := func() *Controller {
		arr, err := nor.NewArray(nor.Small())
		if err != nil {
			t.Fatal(err)
		}
		model, err := floatgate.NewModel(floatgate.DefaultParams(), seed)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := New(Config{Array: arr, Model: model, Timing: MSP430Timing(), NoiseSeed: seed ^ 0xD1FF})
		if err != nil {
			t.Fatal(err)
		}
		mustUnlock(t, ctl)
		return ctl
	}
	fast, ref = build(), build()
	if fast.PhysicsPath() != device.PhysicsFast {
		t.Fatalf("fast path is not the default: %v", fast.PhysicsPath())
	}
	if err := ref.SetPhysicsPath(device.PhysicsReference); err != nil {
		t.Fatal(err)
	}
	return fast, ref
}

// compareArrays asserts bit-identical margins and wear. Calling Array()
// flushes any deferred physics, so the comparison sees final state.
func compareArrays(t *testing.T, fast, ref *Controller, tag string) {
	t.Helper()
	fa, ra := fast.Array(), ref.Array()
	cells := fa.Geometry().TotalCells()
	for i := 0; i < cells; i++ {
		fm, rm := fa.Margin(i), ra.Margin(i)
		if math.Float64bits(fm) != math.Float64bits(rm) {
			t.Fatalf("%s: cell %d margin fast=%v ref=%v", tag, i, fm, rm)
		}
		fw, rw := fa.Wear(i), ra.Wear(i)
		if math.Float64bits(fw) != math.Float64bits(rw) {
			t.Fatalf("%s: cell %d wear fast=%v ref=%v", tag, i, fw, rw)
		}
	}
}

func TestFastPathMatchesReferenceUnderFuzz(t *testing.T) {
	for _, seed := range []uint64{0xA11CE, 0xB0B, 0xF10D, 7} {
		fast, ref := twinControllers(t, seed)
		geom := fast.Array().Geometry()
		segs := geom.TotalSegments()
		segBytes := geom.SegmentBytes
		words := geom.WordsPerSegment()
		rnd := rand.New(rand.NewSource(int64(seed)))

		randWords := func() []uint64 {
			vs := make([]uint64, words)
			for i := range vs {
				vs[i] = uint64(rnd.Intn(1 << 16))
			}
			return vs
		}

		const ops = 400
		for op := 0; op < ops; op++ {
			seg := rnd.Intn(segs)
			addr := seg * segBytes
			switch rnd.Intn(12) {
			case 0:
				if err1, err2 := fast.EraseSegment(addr), ref.EraseSegment(addr); err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
			case 1:
				d1, err1 := fast.EraseSegmentAdaptive(addr)
				d2, err2 := ref.EraseSegmentAdaptive(addr)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if d1 != d2 {
					t.Fatalf("op %d: adaptive pulse fast=%v ref=%v", op, d1, d2)
				}
			case 2:
				vs := randWords()
				if err1, err2 := fast.ProgramBlock(addr, vs), ref.ProgramBlock(addr, vs); err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
			case 3:
				w := rnd.Intn(words)
				v := uint64(rnd.Intn(1 << 16))
				a := addr + w*geom.WordBytes
				if err1, err2 := fast.ProgramWord(a, v), ref.ProgramWord(a, v); err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
			case 4, 5, 6:
				// Partial erases dominate the mix: they are the op the
				// deferral engine reorganizes. Pulses span deterministic
				// misses, the metastable band, and chained re-pulses.
				pulse := time.Duration(5+rnd.Float64()*35) * time.Microsecond
				if err1, err2 := fast.PartialEraseSegment(addr, pulse), ref.PartialEraseSegment(addr, pulse); err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
			case 7, 8:
				// Reads pin read values and noise positions.
				for r := 0; r < 40; r++ {
					w := rnd.Intn(words)
					a := addr + w*geom.WordBytes
					v1, err1 := fast.ReadWord(a)
					v2, err2 := ref.ReadWord(a)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if v1 != v2 {
						t.Fatalf("op %d: read %#x fast=%#x ref=%#x", op, a, v1, v2)
					}
				}
			case 9:
				vs := randWords()
				n := 1 + rnd.Intn(2000)
				adaptive := rnd.Intn(2) == 0
				if err1, err2 := fast.StressSegmentWords(addr, vs, n, adaptive), ref.StressSegmentWords(addr, vs, n, adaptive); err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
			case 10:
				m1, x1, err1 := fast.SegmentMeanTau(addr)
				m2, x2, err2 := ref.SegmentMeanTau(addr)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(x1) != math.Float64bits(x2) {
					t.Fatalf("op %d: mean tau fast=(%v,%v) ref=(%v,%v)", op, m1, x1, m2, x2)
				}
			case 11:
				s1, err1 := fast.ReadSegment(addr)
				s2, err2 := ref.ReadSegment(addr)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				for i := range s1 {
					if s1[i] != s2[i] {
						t.Fatalf("op %d: segment word %d fast=%#x ref=%#x", op, i, s1[i], s2[i])
					}
				}
			}
			// Environment shifts exercise the age/temperature transforms
			// the deferred tau captures at defer time.
			if rnd.Intn(37) == 0 {
				y := fast.AgeYears() + rnd.Float64()*2 // chips do not get younger
				if err1, err2 := fast.SetAgeYears(y), ref.SetAgeYears(y); err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
			}
			if rnd.Intn(37) == 0 {
				temp := rnd.Float64() * 70 // commercial range
				if err1, err2 := fast.SetAmbientTempC(temp), ref.SetAmbientTempC(temp); err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
			}
			// Compare full state only occasionally: Array() flushes the
			// deferral engine, and comparing every op would prevent
			// multi-op deferral chains from ever building up.
			if op%97 == 96 {
				compareArrays(t, fast, ref, "mid-sequence")
			}
		}
		compareArrays(t, fast, ref, "final")
		if fast.Stats() != ref.Stats() {
			t.Fatalf("stats diverged: fast=%+v ref=%+v", fast.Stats(), ref.Stats())
		}
		if fast.Clock().Now() != ref.Clock().Now() {
			t.Fatalf("virtual time diverged: fast=%v ref=%v", fast.Clock().Now(), ref.Clock().Now())
		}
	}
}

// TestWearNeverDecreasesAcrossOps: wear is monotone along any operation
// sequence — the irreversibility axiom, asserted on the fast path where
// wear updates are eager even while margins are deferred.
func TestWearNeverDecreasesAcrossOps(t *testing.T) {
	ctl := newSeededController(t, 0x5EED)
	mustUnlock(t, ctl)
	geom := ctl.Array().Geometry()
	segs := geom.TotalSegments()
	segBytes := geom.SegmentBytes
	words := geom.WordsPerSegment()
	rnd := rand.New(rand.NewSource(99))

	cells := geom.TotalCells()
	snap := make([]float64, cells)
	record := func() {
		arr := ctl.Array()
		for i := 0; i < cells; i++ {
			w := arr.Wear(i)
			if w < snap[i] {
				t.Fatalf("cell %d wear decreased %v -> %v", i, snap[i], w)
			}
			snap[i] = w
		}
	}
	record()
	for op := 0; op < 120; op++ {
		seg := rnd.Intn(segs)
		addr := seg * segBytes
		switch rnd.Intn(5) {
		case 0:
			if err := ctl.EraseSegment(addr); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := ctl.EraseSegmentAdaptive(addr); err != nil {
				t.Fatal(err)
			}
		case 2:
			vs := make([]uint64, words)
			for i := range vs {
				vs[i] = uint64(rnd.Intn(1 << 16))
			}
			if err := ctl.ProgramBlock(addr, vs); err != nil {
				t.Fatal(err)
			}
		case 3:
			pulse := time.Duration(5+rnd.Float64()*35) * time.Microsecond
			if err := ctl.PartialEraseSegment(addr, pulse); err != nil {
				t.Fatal(err)
			}
		case 4:
			vs := make([]uint64, words)
			if err := ctl.StressSegmentWords(addr, vs, 1+rnd.Intn(500), rnd.Intn(2) == 0); err != nil {
				t.Fatal(err)
			}
		}
		record()
	}
}
