package flashctl

import "time"

// This file provides the memory-mapped register view of the controller —
// the interface actual MSP430 firmware uses (FCTL1/FCTL3/FCTL4, §II-B).
// The method-level API (EraseSegment, ProgramWord, ...) and this register
// protocol drive the same state machine; the register layer exists so the
// imprint/extract procedures can be exercised exactly as firmware issues
// them, including the password discipline and the emergency exit bit.

// Register selects one of the flash controller registers.
type Register int

// Flash controller registers (modeled after the MSP430 FCTL block).
const (
	// FCTL1 holds the operation-select bits (ERASE, MERAS, WRT).
	FCTL1 Register = iota
	// FCTL3 holds LOCK, BUSY and EMEX.
	FCTL3
	// FCTL4 holds auxiliary control (unused bits read as zero).
	FCTL4
)

// FCTL1 bits.
const (
	BitERASE = 1 << 1 // segment erase select
	BitMERAS = 1 << 2 // mass (bank) erase select
	BitWRT   = 1 << 6 // word write select
)

// FCTL3 bits.
const (
	BitBUSY = 1 << 0 // operation in progress (read-only)
	BitLOCK = 1 << 4 // write protection
	BitEMEX = 1 << 5 // emergency exit: aborts the erase in flight
)

// FCTLPassword is the high-byte password every register write must
// carry; a write with the wrong password is an access violation that
// re-locks the controller (matching the MSP430 FCTL convention).
const FCTLPassword = uint16(0xA5) << 8

// RegisterFile is the firmware-facing view of a Controller. Writes
// follow the hardware protocol: set up FCTL1, clear LOCK in FCTL3, then
// issue the dummy write to the target address that triggers the
// operation.
type RegisterFile struct {
	ctl   *Controller
	fctl1 uint16
	// pendingErasePulse emulates the timing-generator abort: when
	// firmware sets EMEX within the erase window, the erase becomes a
	// partial erase of the elapsed duration. The simulator models this
	// as an explicit pulse length armed before the dummy write.
	pendingErasePulse time.Duration
}

// Registers returns the register view of the controller.
func (c *Controller) Registers() *RegisterFile {
	return &RegisterFile{ctl: c}
}

// Read returns the current value of a register.
func (r *RegisterFile) Read(reg Register) uint16 {
	switch reg {
	case FCTL1:
		return FCTLPassword | r.fctl1
	case FCTL3:
		v := FCTLPassword
		if r.ctl.Locked() {
			v |= BitLOCK
		}
		// Operations complete synchronously in the simulator, so BUSY
		// always reads clear between calls.
		return v
	default:
		return FCTLPassword
	}
}

// Write performs a password-checked register write.
func (r *RegisterFile) Write(reg Register, value uint16) error {
	if value&0xFF00 != FCTLPassword {
		r.ctl.stats.AccessErrors++
		r.ctl.Lock()
		return &Error{Op: "fctl-write", Addr: -1, Msg: "access violation: bad register password"}
	}
	switch reg {
	case FCTL1:
		r.fctl1 = value & 0x00FF
		return nil
	case FCTL3:
		if value&BitLOCK != 0 {
			r.ctl.Lock()
			return nil
		}
		return r.ctl.Unlock(UnlockKey)
	case FCTL4:
		return nil
	}
	return &Error{Op: "fctl-write", Addr: -1, Msg: "unknown register"}
}

// ArmEmergencyExit schedules the next erase triggered through the
// register file to be aborted after the given pulse — the firmware
// pattern of starting an erase and setting EMEX from a timer interrupt.
func (r *RegisterFile) ArmEmergencyExit(pulse time.Duration) error {
	if pulse <= 0 {
		return &Error{Op: "emex", Addr: -1, Msg: "non-positive abort delay"}
	}
	r.pendingErasePulse = pulse
	return nil
}

// DummyWrite issues the data write that triggers the operation selected
// in FCTL1 at the given address, exactly as firmware does: a write with
// ERASE set starts a segment erase (the data is ignored); with MERAS a
// bank erase; with WRT it programs the word.
func (r *RegisterFile) DummyWrite(addr int, data uint64) error {
	switch {
	case r.fctl1&BitMERAS != 0:
		return r.ctl.MassEraseBank(addr)
	case r.fctl1&BitERASE != 0:
		if r.pendingErasePulse > 0 {
			pulse := r.pendingErasePulse
			r.pendingErasePulse = 0
			return r.ctl.PartialEraseSegment(addr, pulse)
		}
		return r.ctl.EraseSegment(addr)
	case r.fctl1&BitWRT != 0:
		return r.ctl.ProgramWord(addr, data)
	}
	r.ctl.stats.AccessErrors++
	return &Error{Op: "dummy-write", Addr: addr, Msg: "no operation selected in FCTL1"}
}

// ReadWord reads through the register view (plain array read; flash
// reads need no unlock).
func (r *RegisterFile) ReadWord(addr int) (uint64, error) {
	return r.ctl.ReadWord(addr)
}
