package flashctl

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
)

// opcode drives the random-sequence invariant tests.
type opcode struct {
	Kind  uint8
	Addr  uint16
	Value uint16
	Pulse uint8 // µs
}

// applyOp executes one randomized operation; invalid arguments are fine —
// the controller must reject them without corrupting state.
func applyOp(c *Controller, op opcode) {
	geom := c.Array().Geometry()
	addr := int(op.Addr) % geom.TotalBytes()
	addr &^= 1 // word-align most of the time
	switch op.Kind % 7 {
	case 0:
		_ = c.EraseSegment(addr)
	case 1:
		_ = c.ProgramWord(addr, uint64(op.Value))
	case 2:
		_ = c.PartialEraseSegment(addr, time.Duration(op.Pulse)*time.Microsecond)
	case 3:
		_, _ = c.ReadWord(addr)
	case 4:
		_, _ = c.EraseSegmentAdaptive(addr)
	case 5:
		_ = c.PartialProgramSegment(addr, time.Duration(op.Pulse)*time.Microsecond)
	case 6:
		_ = c.ProgramBlock(addr, []uint64{uint64(op.Value), uint64(^op.Value)})
	}
}

// Property: no operation sequence ever decreases any cell's wear, and
// virtual time never runs backward.
func TestQuickWearMonotoneUnderAnySequence(t *testing.T) {
	f := func(seed uint64, ops []opcode) bool {
		c, err := newQuickController(seed)
		if err != nil {
			return false
		}
		if err := c.Unlock(UnlockKey); err != nil {
			return false
		}
		if len(ops) > 40 {
			ops = ops[:40]
		}
		geom := c.Array().Geometry()
		prevWear := make([]float64, geom.TotalCells())
		prevTime := c.Clock().Now()
		for _, op := range ops {
			applyOp(c, op)
			if c.Clock().Now() < prevTime {
				return false
			}
			prevTime = c.Clock().Now()
			// Spot-check wear monotonicity on a sample of cells.
			for cell := 0; cell < geom.TotalCells(); cell += 997 {
				w := c.Array().Wear(cell)
				if w < prevWear[cell] {
					return false
				}
				prevWear[cell] = w
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence, a full erase then read gives all ones —
// the digital contract of flash never breaks.
func TestQuickEraseAlwaysRestoresOnes(t *testing.T) {
	f := func(seed uint64, ops []opcode) bool {
		c, err := newQuickController(seed)
		if err != nil {
			return false
		}
		if err := c.Unlock(UnlockKey); err != nil {
			return false
		}
		if len(ops) > 20 {
			ops = ops[:20]
		}
		for _, op := range ops {
			applyOp(c, op)
		}
		if err := c.EraseSegment(0); err != nil {
			return false
		}
		words, err := c.ReadSegment(0)
		if err != nil {
			return false
		}
		for _, w := range words {
			if w != 0xFFFF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lock blocks every mutating command after any sequence.
func TestQuickLockAlwaysEnforced(t *testing.T) {
	f := func(seed uint64, ops []opcode) bool {
		c, err := newQuickController(seed)
		if err != nil {
			return false
		}
		if err := c.Unlock(UnlockKey); err != nil {
			return false
		}
		if len(ops) > 10 {
			ops = ops[:10]
		}
		for _, op := range ops {
			applyOp(c, op)
		}
		c.Lock()
		before := c.Array().Wear(0)
		if err := c.EraseSegment(0); err == nil {
			return false
		}
		if err := c.ProgramWord(0, 0); err == nil {
			return false
		}
		if err := c.PartialEraseSegment(0, time.Microsecond); err == nil {
			return false
		}
		return c.Array().Wear(0) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func newQuickController(seed uint64) (*Controller, error) {
	arr, err := nor.NewArray(nor.Geometry{Banks: 1, SegmentsPerBank: 2, SegmentBytes: 64, WordBytes: 2})
	if err != nil {
		return nil, err
	}
	model, err := newQuickModel(seed)
	if err != nil {
		return nil, err
	}
	return New(Config{Array: arr, Model: model, Timing: MSP430Timing()})
}

func TestAgeSlowsWornCellErase(t *testing.T) {
	c := newSeededController(t, 5)
	mustUnlock(t, c)
	zeros := make([]uint64, c.Array().Geometry().WordsPerSegment())
	if err := c.StressSegmentWords(0, zeros, 80_000, true); err != nil {
		t.Fatal(err)
	}
	countErased := func() int {
		if err := c.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		if err := c.ProgramBlock(0, zeros); err != nil {
			t.Fatal(err)
		}
		if err := c.PartialEraseSegment(0, 25*time.Microsecond); err != nil {
			t.Fatal(err)
		}
		words, err := c.ReadSegment(0)
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		for _, w := range words {
			for b := 0; b < 16; b++ {
				if w&(1<<uint(b)) != 0 {
					ones++
				}
			}
		}
		return ones
	}
	young := countErased()
	if err := c.SetAgeYears(20); err != nil {
		t.Fatal(err)
	}
	old := countErased()
	if old >= young {
		t.Errorf("retention drift should slow worn cells: erased %d young vs %d old", young, old)
	}
}

func TestAgeMonotone(t *testing.T) {
	c := newTestController(t)
	if err := c.SetAgeYears(5); err != nil {
		t.Fatal(err)
	}
	if c.AgeYears() != 5 {
		t.Errorf("AgeYears = %v", c.AgeYears())
	}
	if err := c.SetAgeYears(3); err == nil {
		t.Error("rejuvenation accepted")
	}
	if err := c.SetAgeYears(5); err != nil {
		t.Error("same-age set should be allowed")
	}
}

// newQuickModel builds a model for the invariant tests.
func newQuickModel(seed uint64) (*floatgate.Model, error) {
	return floatgate.NewModel(floatgate.DefaultParams(), seed)
}

func TestBeyondEnduranceReadsNoisier(t *testing.T) {
	c := newSeededController(t, 13)
	mustUnlock(t, c)
	zeros := make([]uint64, c.Array().Geometry().WordsPerSegment())
	// Stress far past the endurance budget.
	if err := c.StressSegmentWords(0, zeros, 250_000, true); err != nil {
		t.Fatal(err)
	}
	model := c.Model()
	nominal := model.ReadSigmaUs(50_000)
	worn := model.ReadSigmaUs(250_000)
	if worn <= nominal {
		t.Fatalf("read noise should grow past endurance: %v vs %v", worn, nominal)
	}
	count, err := c.WornCellCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if count != c.Array().Geometry().CellsPerSegment() {
		t.Errorf("worn cells = %d, want whole segment", count)
	}
	fresh, err := c.WornCellCount(c.Array().Geometry().SegmentBytes)
	if err != nil || fresh != 0 {
		t.Errorf("fresh segment worn = %d, %v", fresh, err)
	}
	if _, err := c.WornCellCount(-1); err == nil {
		t.Error("bad address accepted")
	}
}

func TestAmbientTemperatureAffectsErase(t *testing.T) {
	c := newSeededController(t, 21)
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	zeros := make([]uint64, geom.WordsPerSegment())
	count := func(tempC float64) int {
		if err := c.SetAmbientTempC(tempC); err != nil {
			t.Fatal(err)
		}
		if err := c.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		if err := c.ProgramBlock(0, zeros); err != nil {
			t.Fatal(err)
		}
		if err := c.PartialEraseSegment(0, 21*time.Microsecond); err != nil {
			t.Fatal(err)
		}
		words, err := c.ReadSegment(0)
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		for _, w := range words {
			for b := 0; b < 16; b++ {
				if w&(1<<uint(b)) != 0 {
					ones++
				}
			}
		}
		return ones
	}
	cold := count(0)
	nominal := count(25)
	hot := count(70)
	if !(cold < nominal && nominal < hot) {
		t.Errorf("erase speed should grow with temperature: 0C=%d 25C=%d 70C=%d erased", cold, nominal, hot)
	}
	if err := c.SetAmbientTempC(-40); err == nil {
		t.Error("below-range temperature accepted")
	}
	if err := c.SetAmbientTempC(125); err == nil {
		t.Error("above-range temperature accepted")
	}
	if c.AmbientTempC() != 70 {
		t.Errorf("AmbientTempC = %v", c.AmbientTempC())
	}
}
