package flashctl

// The batched physics fast path (device.PhysicsFast, the default).
//
// The reference path in controller.go evaluates one Gamma quantile per
// cell per partial erase and per adaptive-erase scan — the dominant cost
// of every characterization sweep. This file reorganizes the same
// arithmetic around two observations:
//
//  1. Every cell of a segment evaluated at the same wear shares the
//     whole tau environment (shift, spread, shape, lgamma); only the
//     per-cell quantile position u differs, and the numerically
//     evaluated quantile is monotone in u (floatgate.QuantilePad covers
//     the convergence tolerance).
//
//  2. Almost no partial-erase margin is ever *observed* at full
//     precision: a read only needs the margin's relation to the ±6σ
//     metastable band, a subsequent erase only needs its sign, and the
//     next full erase discards it entirely.
//
// So a partial erase does not compute margins for fully-programmed
// cells. It records, per (operation, wear) group, everything the
// reference arithmetic would have consumed — the hoisted tau environment
// (floatgate.TauEnv), the defer-time retention shift and temperature
// factor, the pulse length, and the position of each later partial-erase
// pulse — and parks the cells in the group, ordered by u. Observations
// answer from *margin brackets*: padded quantile bounds taken from
// already-evaluated neighbors in u order, pushed through the exact
// (monotone) float chain the reference path would have executed,
// including the float32 store after every pulse. A bracket that decides
// the observation costs no quantile; a bracket that straddles the
// decision boundary materializes the cell by replaying the reference
// arithmetic operation for operation, so the stored value — and every
// downstream artifact — is bit-identical to the reference path. The
// equivalence suite (fastpath_equiv_test.go, the golden-equivalence
// experiment test) pins this.
//
// Wear is never deferred: it is updated eagerly and exactly on every
// operation, because wear feeds the *next* operation's physics.
//
// Decorators observe identical behavior on both paths: the fast path
// changes arithmetic inside an operation, never the operation sequence,
// the charged times, the stats, or the noise-stream consumption (a
// bracket decides a read only where the reference path would have
// decided it without consuming noise).

import (
	"math"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
)

// fastSeg holds the per-segment state of the fast path: the immutable
// cell order by wear-sensitivity percentile u, and the live deferral
// state (groups, per-cell group assignment, pulse log).
type fastSeg struct {
	seg   int
	cells int
	bases []floatgate.CellBase // aliases the controller's base cache

	// uorder lists local cell indices sorted by ascending u, computed
	// once per segment: per-operation groups walk it to attach their
	// members already sorted, with no per-operation sort.
	uorder []int32

	// group maps each local cell to its deferral group (-1 = concrete).
	// posOf is the cell's position inside its group's members.
	group []int32
	posOf []int32
	live  int // number of currently deferred cells

	// pulseLog records the partial-erase pulses (µs) issued since the
	// oldest live group was created; a group's chain is the suffix
	// starting at its logFrom.
	pulseLog []float64

	groups []*tauGroup
	free   []*tauGroup // retired groups, kept for slice reuse

	// Conclusive read decisions are cached per cell: a deferred cell
	// whose bracket proves it outside the metastable band reads the same
	// value on every subsequent read (no noise is consumed), until the
	// next partial erase moves its margin or wear — which bumps decGen
	// and invalidates every stamp at once.
	decGen   uint32
	decStamp []uint32
	decision []uint8
}

// tauGroup captures the defer-time physics shared by every cell a single
// partial erase deferred at a single wear value.
type tauGroup struct {
	wearKey uint64           // Float64bits of the defer-time wear
	env     floatgate.TauEnv // hoisted tau terms at that wear
	direct  bool             // tau has no quantile term (zero wear/spread)
	hasRet  bool             // defer-time ageYears > 0
	retUs   float64          // RetentionShiftUs(wear, age) at defer time
	tempF   float64          // TempFactor at defer time
	p0Us    float64          // the deferring partial-erase pulse, µs
	logFrom int              // pulseLog index of the first later pulse

	members []int32   // local cell indices, ascending u
	q       []float64 // memoized exact quantiles per member (NaN = none)
	evalPos []int32   // member positions with exact q, ascending
}

// PhysicsPath reports which physics path the controller runs.
func (c *Controller) PhysicsPath() device.PhysicsPath {
	if c.physRef {
		return device.PhysicsReference
	}
	return device.PhysicsFast
}

// SetPhysicsPath switches the physics path. Switching to the reference
// path first materializes every deferred margin, so both paths always
// observe identical array state.
func (c *Controller) SetPhysicsPath(p device.PhysicsPath) error {
	switch p {
	case device.PhysicsFast:
		c.physRef = false
	case device.PhysicsReference:
		c.flushPhysics()
		c.physRef = true
	default:
		return &Error{Op: "physics", Addr: -1, Msg: "unknown physics path " + string(p)}
	}
	return nil
}

// flushPhysics materializes every deferred margin in every segment.
func (c *Controller) flushPhysics() {
	for _, fs := range c.phys {
		fs.flush(c)
	}
}

// fastSegFor returns (building on first touch) the fast-path state of a
// segment.
func (c *Controller) fastSegFor(seg int) *fastSeg {
	fs := c.phys[seg]
	if fs == nil {
		cells := c.array.Geometry().CellsPerSegment()
		fs = &fastSeg{seg: seg, cells: cells, bases: c.segBases(seg)}
		fs.uorder = make([]int32, cells)
		for i := range fs.uorder {
			fs.uorder[i] = int32(i)
		}
		floatgate.SortIndexByU(fs.bases, fs.uorder)
		fs.group = make([]int32, cells)
		for i := range fs.group {
			fs.group[i] = -1
		}
		fs.posOf = make([]int32, cells)
		fs.decGen = 1
		fs.decStamp = make([]uint32, cells)
		fs.decision = make([]uint8, cells)
		if c.phys == nil {
			c.phys = make(map[int]*fastSeg)
		}
		c.phys[seg] = fs
	}
	return fs
}

// fastSegIfLive returns the segment's deferral state when the fast path
// is on and the segment has pending deferred margins; nil otherwise, so
// concrete-only code paths skip all deferral checks.
func (c *Controller) fastSegIfLive(seg int) *fastSeg {
	if c.physRef || c.phys == nil {
		return nil
	}
	fs := c.phys[seg]
	if fs == nil || fs.live == 0 {
		return nil
	}
	return fs
}

// clearDeferred drops a cell's deferral without materializing it (its
// pending margin is about to be overwritten). When the last deferred
// cell clears, the group and pulse-log state resets.
func (fs *fastSeg) clearDeferred(local int32) {
	fs.group[local] = -1
	fs.live--
	if fs.live == 0 {
		fs.reset()
	}
}

// reset retires every group, recycling their slices.
func (fs *fastSeg) reset() {
	fs.pulseLog = fs.pulseLog[:0]
	for _, g := range fs.groups {
		g.members = g.members[:0]
		g.q = g.q[:0]
		g.evalPos = g.evalPos[:0]
		fs.free = append(fs.free, g)
	}
	fs.groups = fs.groups[:0]
}

// newGroup takes a group from the free list (or allocates one) and
// appends it to the live set.
func (fs *fastSeg) newGroup() (*tauGroup, int32) {
	var g *tauGroup
	if n := len(fs.free); n > 0 {
		g = fs.free[n-1]
		fs.free = fs.free[:n-1]
	} else {
		g = &tauGroup{}
	}
	fs.groups = append(fs.groups, g)
	return g, int32(len(fs.groups) - 1)
}

// tauOf combines a member's quantile (exact or bound) into the full
// transformed crossing time, in the reference cellTau operation order.
func (g *tauGroup) tauOf(fs *fastSeg, local int32, q float64) float64 {
	tau := g.env.TauFromQ(fs.bases[local], q)
	if g.hasRet {
		tau += g.retUs
	}
	return tau * g.tempF
}

// exactQ returns the member's exact quantile, evaluating and memoizing
// it on first use (and registering the position for neighbor brackets).
func (g *tauGroup) exactQ(fs *fastSeg, pos int32) float64 {
	if q := g.q[pos]; !math.IsNaN(q) {
		return q
	}
	q := g.env.QuantileU(fs.bases[g.members[pos]].U)
	g.q[pos] = q
	// Insert pos into the sorted evalPos (manual binary search: this is
	// on the read path, and closures passed to sort.Search are a risk to
	// the zero-allocation guarantee).
	lo, hi := 0, len(g.evalPos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.evalPos[mid] < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g.evalPos = append(g.evalPos, 0)
	copy(g.evalPos[lo+1:], g.evalPos[lo:])
	g.evalPos[lo] = pos
	return q
}

// bracketQ returns bounds on the member's exact quantile, derived from
// already-evaluated members in u order (the numeric quantile is monotone
// in u up to floatgate.QuantilePad). If nothing is evaluated at or above
// pos, the group's top member is evaluated once — it bounds every member
// from above. Equal bounds mean the value is exact.
func (g *tauGroup) bracketQ(fs *fastSeg, pos int32) (qlo, qhi float64) {
	if q := g.q[pos]; !math.IsNaN(q) {
		return q, q
	}
	lo, hi := 0, len(g.evalPos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.evalPos[mid] < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	qlo = 0
	if lo > 0 {
		qlo = floatgate.PadQLow(g.q[g.evalPos[lo-1]])
	}
	if lo < len(g.evalPos) {
		return qlo, floatgate.PadQHigh(g.q[g.evalPos[lo]])
	}
	last := int32(len(g.members) - 1)
	q := g.exactQ(fs, last)
	if last == pos {
		return q, q
	}
	return qlo, floatgate.PadQHigh(q)
}

// chainMargin pushes a crossing-time value through the float chain the
// reference path would have stored: the defer-time margin p0-tau clamped
// to float32, then each later pulse added and clamped again. Every step
// is monotone non-increasing in tau, so applying it to a tau bound
// yields a valid margin bound.
func (fs *fastSeg) chainMargin(g *tauGroup, tau float64) float64 {
	v := nor.ClampMargin(g.p0Us - tau)
	for _, p := range fs.pulseLog[g.logFrom:] {
		v = nor.ClampMargin(float64(v) + p)
	}
	return float64(v)
}

// marginBracket returns conservative bounds [lo, hi] on the margin a
// deferred cell would materialize to. Equal bounds are exact.
func (fs *fastSeg) marginBracket(g *tauGroup, local int32) (lo, hi float64) {
	if g.direct {
		m := fs.chainMargin(g, g.tauOf(fs, local, 0))
		return m, m
	}
	pos := fs.posOf[local]
	qlo, qhi := g.bracketQ(fs, pos)
	lo = fs.chainMargin(g, g.tauOf(fs, local, qhi))
	if qlo == qhi {
		return lo, lo
	}
	hi = fs.chainMargin(g, g.tauOf(fs, local, qlo))
	return lo, hi
}

// materializeCell computes a deferred cell's exact margin by replaying
// the reference arithmetic — the defer-time partial-erase store, then
// every later partial-erase pulse in order, each through the float32
// store — and makes the cell concrete.
func (c *Controller) materializeCell(fs *fastSeg, local int32) {
	g := fs.groups[fs.group[local]]
	var tau float64
	if g.direct {
		tau = g.tauOf(fs, local, 0)
	} else {
		tau = g.tauOf(fs, local, g.exactQ(fs, fs.posOf[local]))
	}
	cell := fs.seg*fs.cells + int(local)
	c.array.SetMargin(cell, g.p0Us-tau)
	for _, p := range fs.pulseLog[g.logFrom:] {
		c.array.SetMargin(cell, c.array.Margin(cell)+p)
	}
	fs.clearDeferred(local)
}

// flush materializes every deferred cell of the segment.
func (fs *fastSeg) flush(c *Controller) {
	if fs.live == 0 {
		return
	}
	for local, gid := range fs.group {
		if gid >= 0 {
			c.materializeCell(fs, int32(local))
		}
	}
}

// deferredSign reports whether a deferred cell's pending margin is
// negative (the cell reads as programmed), deciding from brackets where
// possible and materializing only on a straddle.
func (c *Controller) deferredSign(fs *fastSeg, local int32) bool {
	g := fs.groups[fs.group[local]]
	lo, hi := fs.marginBracket(g, local)
	if hi < 0 {
		return true
	}
	if lo >= 0 {
		return false
	}
	c.materializeCell(fs, local)
	return c.array.Margin(fs.seg*fs.cells+int(local)) < 0
}

// readDeferred performs one digital read of a deferred cell. Reads the
// bracket proves to lie outside the ±6σ metastable band are decided
// without consuming noise — exactly where SampleReadAt decides without
// consuming noise — and only genuinely boundary reads materialize.
func (c *Controller) readDeferred(fs *fastSeg, local int32) bool {
	if fs.decStamp[local] == fs.decGen {
		return fs.decision[local] == 1
	}
	g := fs.groups[fs.group[local]]
	lo, hi := fs.marginBracket(g, local)
	cell := fs.seg*fs.cells + int(local)
	sigma := c.model.ReadSigmaUs(c.array.Wear(cell))
	if lo > 6*sigma {
		fs.decStamp[local] = fs.decGen
		fs.decision[local] = 1
		return true
	}
	if hi < -6*sigma {
		fs.decStamp[local] = fs.decGen
		fs.decision[local] = 0
		return false
	}
	c.materializeCell(fs, local)
	margin := c.array.Margin(cell)
	switch {
	case margin >= float64(nor.MarginErased):
		return true
	case margin <= float64(nor.MarginProgrammed):
		return false
	}
	return c.model.SampleReadAt(margin, c.array.Wear(cell), c.noise)
}

// eraseCellsFast is the batched eraseCells: contiguous-slice wear and
// margin updates, with deferred cells resolved to their sign only (their
// pending margins are discarded, never computed).
func (c *Controller) eraseCellsFast(seg int) {
	margins, wear := c.array.CellSpan(seg)
	fs := c.fastSegIfLive(seg)
	fullWear := c.model.EraseWear(true)
	onlyWear := c.model.EraseWear(false)
	for i := range margins {
		var wasProgrammed bool
		if fs != nil && fs.group[i] >= 0 {
			wasProgrammed = c.deferredSign(fs, int32(i))
			if fs.group[i] >= 0 {
				fs.clearDeferred(int32(i))
			}
		} else {
			wasProgrammed = margins[i] < 0
		}
		if wasProgrammed {
			wear[i] += fullWear
		} else {
			wear[i] += onlyWear
		}
		margins[i] = nor.MarginErased
	}
}

// partialEraseFast applies a partial-erase pulse with lazy margins: the
// quantile term of each fully-programmed cell is deferred into a
// per-(operation, wear) group and only evaluated when an observation
// needs it. Wear updates and already-metastable margin updates are
// applied eagerly, in the reference path's cell order.
func (c *Controller) partialEraseFast(seg int, pulseUs float64) {
	fs := c.fastSegFor(seg)
	fs.decGen++ // margins and wear are moving: drop cached read decisions
	margins, wear := c.array.CellSpan(seg)
	groupsFrom := len(fs.groups)
	carried := false  // pre-existing deferrals extend their chains
	deferred := false // this operation deferred at least one cell
	tempF := c.model.TempFactor(c.AmbientTempC())
	for i := 0; i < fs.cells; i++ {
		local := int32(i)
		var wasProgrammed bool
		isDeferred := fs.live > 0 && fs.group[local] >= 0
		if isDeferred {
			wasProgrammed = c.deferredSign(fs, local)
			isDeferred = fs.group[local] >= 0 // sign query may materialize
		}
		if isDeferred {
			carried = true // chain extended via the pulse log below
		} else {
			margin := float64(margins[i])
			wasProgrammed = margin < 0
			switch {
			case margin <= float64(nor.MarginProgrammed):
				// Fully programmed: the reference path computes
				// pulseUs - cellTau(wear) here. Find or create this
				// operation's group for the cell's wear.
				wearKey := math.Float64bits(wear[i])
				gid := int32(-1)
				for j := groupsFrom; j < len(fs.groups); j++ {
					if fs.groups[j].wearKey == wearKey {
						gid = int32(j)
						break
					}
				}
				if gid < 0 {
					g, id := fs.newGroup()
					env := c.model.TauEnvAt(wear[i])
					*g = tauGroup{
						wearKey: wearKey,
						env:     env,
						direct:  env.Wear <= 0 || env.Spread == 0,
						hasRet:  c.ageYears > 0,
						retUs:   c.model.RetentionShiftUs(wear[i], c.ageYears),
						tempF:   tempF,
						p0Us:    pulseUs,
						members: g.members,
						q:       g.q,
						evalPos: g.evalPos,
					}
					gid = id
				}
				g := fs.groups[gid]
				if g.direct {
					// No quantile term: the margin is as cheap to compute
					// as to defer.
					margins[i] = nor.ClampMargin(pulseUs - g.tauOf(fs, local, 0))
				} else {
					fs.group[local] = gid
					fs.live++
					margins[i] = float32(math.NaN()) // fail loud if observed raw
					deferred = true
				}
			case margin >= float64(nor.MarginErased):
				// Already erased: stays erased.
			default:
				// Metastable from an earlier (materialized) partial erase.
				margins[i] = nor.ClampMargin(margin + pulseUs)
			}
		}
		if wasProgrammed {
			wear[i] += c.model.EraseWear(true)
		} else {
			wear[i] += c.model.EraseWear(false)
		}
	}
	// Chain bookkeeping: surviving older deferrals absorb this pulse;
	// groups created by this operation start their chains after it.
	if carried {
		fs.pulseLog = append(fs.pulseLog, pulseUs)
	}
	for j := groupsFrom; j < len(fs.groups); j++ {
		fs.groups[j].logFrom = len(fs.pulseLog)
	}
	// Attach members in u order by walking the segment's immutable
	// u-sorted cell order once.
	if deferred {
		for _, local := range fs.uorder {
			gid := fs.group[local]
			if gid >= 0 && int(gid) >= groupsFrom {
				g := fs.groups[gid]
				fs.posOf[local] = int32(len(g.members))
				g.members = append(g.members, local)
				g.q = append(g.q, math.NaN())
			}
		}
	}
	if fs.live == 0 {
		fs.reset()
	}
}

// wearGroup is the scratch grouping of maxTauOver.
type wearGroup struct {
	wearKey uint64
	env     floatgate.TauEnv
	retUs   float64
	members []int32
}

// maxTauOver computes the maximum of cellTau(i, wearOf(i)) over the
// segment's cells selected by include, bit-identical to the sequential
// reference scan: cells sharing a wear value form a group evaluated by
// the pruned exact max (floatgate.MaxTauGroup), and the per-group
// retention/temperature transform is applied to the group maximum —
// valid because the transform is monotone, so the max commutes with it.
func (c *Controller) maxTauOver(seg int, include func(int) bool, wearOf func(int) float64) float64 {
	fs := c.fastSegFor(seg)
	cells := fs.cells
	if cap(c.gidScratch) < cells {
		c.gidScratch = make([]int32, cells)
	}
	gid := c.gidScratch[:cells]
	groups := c.wearGroups[:0]
	last := int32(-1)
	for i := 0; i < cells; i++ {
		if !include(i) {
			gid[i] = -1
			continue
		}
		wearKey := math.Float64bits(wearOf(i))
		g := int32(-1)
		if last >= 0 && groups[last].wearKey == wearKey {
			g = last
		} else {
			for j := range groups {
				if groups[j].wearKey == wearKey {
					g = int32(j)
					break
				}
			}
			if g < 0 {
				w := wearOf(i)
				groups = append(groups, wearGroup{
					wearKey: wearKey,
					env:     c.model.TauEnvAt(w),
					retUs:   c.model.RetentionShiftUs(w, c.ageYears),
				})
				g = int32(len(groups) - 1)
			}
			last = g
		}
		gid[i] = g
	}
	for j := range groups {
		groups[j].members = groups[j].members[:0]
	}
	for _, local := range fs.uorder {
		if g := gid[local]; g >= 0 {
			groups[g].members = append(groups[g].members, local)
		}
	}
	tempF := c.model.TempFactor(c.AmbientTempC())
	maxTau := 0.0
	for j := range groups {
		raw, ok := floatgate.MaxTauGroup(&groups[j].env, fs.bases, groups[j].members, &c.maxScratch)
		if !ok {
			continue
		}
		tau := raw
		if c.ageYears > 0 {
			tau += groups[j].retUs
		}
		tau *= tempF
		if tau > maxTau {
			maxTau = tau
		}
	}
	c.wearGroups = groups
	return maxTau
}

// adaptiveMaxTau is the fast-path replacement of the adaptive-erase scan:
// the max crossing time over the currently-programmed cells at their
// current wear.
func (c *Controller) adaptiveMaxTau(seg int) float64 {
	margins, wear := c.array.CellSpan(seg)
	fs := c.fastSegIfLive(seg)
	include := func(i int) bool {
		if fs != nil && fs.group[i] >= 0 {
			return c.deferredSign(fs, int32(i))
		}
		return margins[i] < 0
	}
	wearOf := func(i int) float64 { return wear[i] }
	return c.maxTauOver(seg, include, wearOf)
}

// cellProgrammed resolves a cell's stable digital sign, deciding
// deferred cells from margin brackets.
func (c *Controller) cellProgrammed(seg, cell int) bool {
	if fs := c.fastSegIfLive(seg); fs != nil {
		if local := int32(cell - fs.seg*fs.cells); fs.group[local] >= 0 {
			return c.deferredSign(fs, local)
		}
	}
	return c.array.Programmed(cell)
}

// setCellMargin overwrites a cell's margin, discarding any deferred
// state (the new value supersedes the never-materialized one).
func (c *Controller) setCellMargin(seg, cell int, v float64) {
	if fs := c.fastSegIfLive(seg); fs != nil {
		if local := int32(cell - fs.seg*fs.cells); fs.group[local] >= 0 {
			fs.clearDeferred(local)
		}
	}
	c.array.SetMargin(cell, v)
}

// MaxTauOver implements device.AdaptiveMaxer for the stress kernel: the
// batched exact max over an arbitrary include/wear view of the segment.
// Declined on the reference path so the kernel's sequential scan runs.
func (s segmentCells) MaxTauOver(include func(i int) bool, wearOf func(i int) float64) (float64, bool) {
	if s.c.physRef {
		return 0, false
	}
	return s.c.maxTauOver(s.seg, include, wearOf), true
}
