package flashctl

import (
	"testing"
	"time"
)

func countProgrammed(t *testing.T, c *Controller, segAddr int) int {
	t.Helper()
	words, err := c.ReadSegment(segAddr)
	if err != nil {
		t.Fatal(err)
	}
	geom := c.Array().Geometry()
	programmed := 0
	for _, w := range words {
		for b := 0; b < geom.WordBits(); b++ {
			if w&(1<<uint(b)) == 0 {
				programmed++
			}
		}
	}
	return programmed
}

func TestPartialProgramSweepFresh(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	run := func(pulse time.Duration) int {
		if err := c.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		if err := c.PartialProgramSegment(0, pulse); err != nil {
			t.Fatal(err)
		}
		return countProgrammed(t, c, 0)
	}
	cells := c.Array().Geometry().CellsPerSegment()
	if got := run(10 * time.Microsecond); got != 0 {
		t.Errorf("10µs pulse programmed %d cells, want 0", got)
	}
	if got := run(80 * time.Microsecond); got != cells {
		t.Errorf("80µs pulse programmed %d cells, want all %d", got, cells)
	}
	mid := run(45 * time.Microsecond)
	if mid == 0 || mid == cells {
		t.Errorf("45µs pulse should be mid-transition, got %d", mid)
	}
}

func TestPartialProgramWornShiftsEarlier(t *testing.T) {
	// A worn segment programs faster: at the same pulse, more cells flip.
	fresh := newSeededController(t, 33)
	worn := newSeededController(t, 33)
	mustUnlock(t, fresh)
	mustUnlock(t, worn)
	geom := worn.Array().Geometry()
	zeros := make([]uint64, geom.WordsPerSegment())
	if err := worn.StressSegmentWords(0, zeros, 50_000, true); err != nil {
		t.Fatal(err)
	}
	pulse := 42 * time.Microsecond
	for _, c := range []*Controller{fresh, worn} {
		if err := c.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		if err := c.PartialProgramSegment(0, pulse); err != nil {
			t.Fatal(err)
		}
	}
	f := countProgrammed(t, fresh, 0)
	w := countProgrammed(t, worn, 0)
	if w <= f {
		t.Errorf("worn segment programmed %d cells vs fresh %d; wear should accelerate programming", w, f)
	}
}

func TestPartialProgramPreservesProgrammedCells(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	if err := c.ProgramWord(0, 0x0000); err != nil {
		t.Fatal(err)
	}
	if err := c.PartialProgramSegment(0, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	v, _ := c.ReadWord(0)
	if v != 0 {
		t.Errorf("programmed word changed to %#x", v)
	}
}

func TestPartialProgramValidation(t *testing.T) {
	c := newTestController(t)
	if err := c.PartialProgramSegment(0, time.Microsecond); err == nil {
		t.Error("locked partial program accepted")
	}
	mustUnlock(t, c)
	if err := c.PartialProgramSegment(0, -time.Microsecond); err == nil {
		t.Error("negative pulse accepted")
	}
	if err := c.PartialProgramSegment(1<<30, time.Microsecond); err == nil {
		t.Error("bad address accepted")
	}
}

func TestPartialProgramChargesTime(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	before := c.Clock().Now()
	if err := c.PartialProgramSegment(0, 40*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if c.Clock().Now() <= before {
		t.Error("partial program did not advance time")
	}
}
