// Package flashctl implements the embedded flash memory controller the
// Flashmark procedures drive (paper §II-B, Fig. 2b): segment and mass
// erase, word and block program, reads, and the emergency-exit command
// that aborts an in-flight erase — the primitive partial erase is built
// from. Operation durations follow the MSP430F543x datasheet and are
// charged to a virtual clock and per-class ledger so the §V timing
// results can be regenerated.
package flashctl

import "time"

// Timing holds the controller's operation durations.
type Timing struct {
	// SegmentErase is the nominal full segment erase time. The datasheet
	// gives 23–35 ms; the paper quotes ~24–25 ms on its parts.
	SegmentErase time.Duration
	// MassErase is the nominal full-bank erase time.
	MassErase time.Duration
	// WordProgram is the time to program one word in single-word mode
	// (datasheet 64–85 µs).
	WordProgram time.Duration
	// BlockProgramFirst and BlockProgramNext are the times for the first
	// and each subsequent word in block-write mode. Block-writing a full
	// 256-word segment takes ~10 ms on the paper's parts.
	BlockProgramFirst time.Duration
	BlockProgramNext  time.Duration
	// WordRead is the time to read one word through the controller.
	WordRead time.Duration
	// OpSetup is the voltage-generator bring-up/teardown overhead charged
	// once per erase or program command.
	OpSetup time.Duration
	// AdaptiveEraseSettle is the extra margin an adaptive (early-exit)
	// erase waits after the last cell crosses, before the emergency exit.
	AdaptiveEraseSettle time.Duration
}

// MSP430Timing returns timings matching the paper's microcontrollers.
// With these values one baseline imprint cycle (nominal segment erase +
// full-segment block program) costs ~34.5 ms, giving the paper's 1380 s
// for a 40 K imprint, and an adaptive-erase cycle costs ~9.7 ms, giving
// the paper's accelerated 387 s.
func MSP430Timing() Timing {
	return Timing{
		SegmentErase:        25 * time.Millisecond,
		MassErase:           32 * time.Millisecond,
		WordProgram:         70 * time.Microsecond,
		BlockProgramFirst:   65 * time.Microsecond,
		BlockProgramNext:    37 * time.Microsecond,
		WordRead:            2 * time.Microsecond,
		OpSetup:             12 * time.Microsecond,
		AdaptiveEraseSettle: 20 * time.Microsecond,
	}
}

// Validate reports whether all durations are positive.
func (t Timing) Validate() error {
	checks := []struct {
		name string
		d    time.Duration
	}{
		{"SegmentErase", t.SegmentErase},
		{"MassErase", t.MassErase},
		{"WordProgram", t.WordProgram},
		{"BlockProgramFirst", t.BlockProgramFirst},
		{"BlockProgramNext", t.BlockProgramNext},
		{"WordRead", t.WordRead},
		{"OpSetup", t.OpSetup},
		{"AdaptiveEraseSettle", t.AdaptiveEraseSettle},
	}
	for _, c := range checks {
		if c.d <= 0 {
			return &Error{Op: "timing", Msg: c.name + " must be positive"}
		}
	}
	return nil
}

// Error is the error type returned by controller operations.
type Error struct {
	Op   string // operation that failed, e.g. "program"
	Addr int    // address involved, -1 if not applicable
	Msg  string
}

func (e *Error) Error() string {
	if e.Addr >= 0 {
		return "flashctl: " + e.Op + " at " + hex(e.Addr) + ": " + e.Msg
	}
	return "flashctl: " + e.Op + ": " + e.Msg
}

func hex(v int) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return "0x" + string(buf[i:])
}
