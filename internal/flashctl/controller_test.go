package flashctl

import (
	"errors"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nor"
	"github.com/flashmark/flashmark/internal/vclock"
)

func newTestController(t *testing.T) *Controller {
	t.Helper()
	return newSeededController(t, 0xC0FFEE)
}

func newSeededController(t *testing.T, seed uint64) *Controller {
	t.Helper()
	arr, err := nor.NewArray(nor.Small())
	if err != nil {
		t.Fatal(err)
	}
	model, err := floatgate.NewModel(floatgate.DefaultParams(), seed)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(Config{Array: arr, Model: model, Timing: MSP430Timing()})
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func mustUnlock(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.Unlock(UnlockKey); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	arr, _ := nor.NewArray(nor.Small())
	model, _ := floatgate.NewModel(floatgate.DefaultParams(), 1)
	if _, err := New(Config{Model: model, Timing: MSP430Timing()}); err == nil {
		t.Error("nil array accepted")
	}
	if _, err := New(Config{Array: arr, Timing: MSP430Timing()}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(Config{Array: arr, Model: model}); err == nil {
		t.Error("zero timing accepted")
	}
}

func TestTimingValidate(t *testing.T) {
	tm := MSP430Timing()
	if err := tm.Validate(); err != nil {
		t.Fatalf("default timing invalid: %v", err)
	}
	tm.WordProgram = 0
	if err := tm.Validate(); err == nil {
		t.Error("zero WordProgram accepted")
	}
}

func TestLockProtocol(t *testing.T) {
	c := newTestController(t)
	if !c.Locked() {
		t.Fatal("controller should start locked")
	}
	if err := c.EraseSegment(0); err == nil {
		t.Fatal("erase while locked should fail")
	}
	if err := c.ProgramWord(0, 0x1234); err == nil {
		t.Fatal("program while locked should fail")
	}
	if err := c.Unlock(0x5A); err == nil {
		t.Fatal("wrong key should fail")
	}
	mustUnlock(t, c)
	if c.Locked() {
		t.Fatal("Unlock did not unlock")
	}
	if err := c.EraseSegment(0); err != nil {
		t.Fatalf("erase after unlock: %v", err)
	}
	c.Lock()
	if err := c.EraseSegment(0); err == nil {
		t.Fatal("erase after re-lock should fail")
	}
	if got := c.Stats().AccessErrors; got != 4 {
		t.Errorf("AccessErrors = %d, want 4", got)
	}
}

func TestReadWorksWhileLocked(t *testing.T) {
	c := newTestController(t)
	v, err := c.ReadWord(0)
	if err != nil {
		t.Fatalf("locked read failed: %v", err)
	}
	if v != 0xFFFF {
		t.Fatalf("fresh word = %#x, want 0xFFFF", v)
	}
}

func TestProgramAndRead(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	if err := c.ProgramWord(4, 0x5443); err != nil { // "TC"
		t.Fatal(err)
	}
	v, err := c.ReadWord(4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5443 {
		t.Fatalf("read back %#x, want 0x5443", v)
	}
	// Neighboring word untouched.
	if v, _ := c.ReadWord(6); v != 0xFFFF {
		t.Fatalf("neighbor = %#x, want 0xFFFF", v)
	}
}

func TestProgramOnlyClearsBits(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	if err := c.ProgramWord(0, 0xF0F0); err != nil {
		t.Fatal(err)
	}
	// Overwriting with 0xFF0F can only clear more bits: result is AND.
	if err := c.ProgramWord(0, 0xFF0F); err != nil {
		t.Fatal(err)
	}
	v, _ := c.ReadWord(0)
	if v != 0xF000 {
		t.Fatalf("overwrite result = %#x, want AND = 0xF000", v)
	}
}

func TestEraseRestoresOnes(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	if err := c.ProgramWord(10, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	v, _ := c.ReadWord(10)
	if v != 0xFFFF {
		t.Fatalf("after erase = %#x, want 0xFFFF", v)
	}
}

func TestEraseAddsWearAsymmetrically(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	// Word 0 programmed, word 1 left erased.
	if err := c.ProgramWord(0, 0x0000); err != nil {
		t.Fatal(err)
	}
	if err := c.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	arr := c.Array()
	progWear := arr.Wear(0)                                            // was programmed
	eraseOnlyWear := arr.Wear(c.Array().Geometry().CellIndex(0, 1, 0)) // stayed erased
	p := c.Model().Params()
	if progWear != p.EraseFromProgrammedWear {
		t.Errorf("P/E cell wear = %v, want %v", progWear, p.EraseFromProgrammedWear)
	}
	if eraseOnlyWear != p.EraseOnlyWear {
		t.Errorf("erase-only cell wear = %v, want %v", eraseOnlyWear, p.EraseOnlyWear)
	}
}

func TestMassEraseBank(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	// Program a word in two different segments of bank 0.
	if err := c.ProgramWord(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.ProgramWord(geom.SegmentBytes, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.MassEraseBank(0); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []int{0, geom.SegmentBytes} {
		if v, _ := c.ReadWord(addr); v != 0xFFFF {
			t.Fatalf("addr %#x after mass erase = %#x", addr, v)
		}
	}
}

func TestAddressValidation(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	if err := c.ProgramWord(1, 0); err == nil {
		t.Error("unaligned program accepted")
	}
	if err := c.ProgramWord(-2, 0); err == nil {
		t.Error("negative address accepted")
	}
	if err := c.EraseSegment(c.Array().Geometry().TotalBytes()); err == nil {
		t.Error("out-of-range erase accepted")
	}
	if _, err := c.ReadWord(3); err == nil {
		t.Error("unaligned read accepted")
	}
	var ferr *Error
	err := c.ProgramWord(1, 0)
	if !errors.As(err, &ferr) {
		t.Errorf("error type = %T, want *Error", err)
	}
}

func TestProgramBlock(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	values := []uint64{0x1111, 0x2222, 0x3333}
	if err := c.ProgramBlock(100, values); err != nil {
		t.Fatal(err)
	}
	for i, want := range values {
		v, _ := c.ReadWord(100 + 2*i)
		if v != want&0xFFFF {
			t.Fatalf("block word %d = %#x, want %#x", i, v, want)
		}
	}
}

func TestProgramBlockBoundary(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	// Block starting at last word of segment 0, length 2: crosses boundary.
	lastWord := geom.SegmentBytes - geom.WordBytes
	if err := c.ProgramBlock(lastWord, []uint64{0, 0}); err == nil {
		t.Error("segment-crossing block accepted")
	}
	if err := c.ProgramBlock(lastWord, []uint64{0}); err != nil {
		t.Errorf("in-segment block rejected: %v", err)
	}
	if err := c.ProgramBlock(0, nil); err != nil {
		t.Errorf("empty block should be a no-op, got %v", err)
	}
}

func TestPartialEraseFreshSegmentSweep(t *testing.T) {
	// The Fig. 3 flow on a fresh segment: program all, partial erase,
	// count. Short pulses leave cells programmed, long pulses erase all.
	c := newTestController(t)
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	zeros := make([]uint64, geom.WordsPerSegment())

	countOnes := func() int {
		words, err := c.ReadSegment(0)
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		for _, w := range words {
			for b := 0; b < geom.WordBits(); b++ {
				if w&(1<<uint(b)) != 0 {
					ones++
				}
			}
		}
		return ones
	}

	run := func(pulse time.Duration) int {
		if err := c.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		if err := c.ProgramBlock(0, zeros); err != nil {
			t.Fatal(err)
		}
		if err := c.PartialEraseSegment(0, pulse); err != nil {
			t.Fatal(err)
		}
		return countOnes()
	}

	if got := run(5 * time.Microsecond); got != 0 {
		t.Errorf("5µs pulse erased %d cells, want 0", got)
	}
	if got := run(50 * time.Microsecond); got != geom.CellsPerSegment() {
		t.Errorf("50µs pulse erased %d cells, want all %d", got, geom.CellsPerSegment())
	}
	mid := run(21 * time.Microsecond)
	if mid == 0 || mid == geom.CellsPerSegment() {
		t.Errorf("21µs pulse should be mid-transition, got %d", mid)
	}
}

func TestPartialEraseMetastableReadsVary(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	zeros := make([]uint64, geom.WordsPerSegment())
	if err := c.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ProgramBlock(0, zeros); err != nil {
		t.Fatal(err)
	}
	// Mid-transition pulse on a fresh segment leaves many cells near the
	// boundary: repeated reads must not always agree.
	if err := c.PartialEraseSegment(0, 21*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	varied := false
	for w := 0; w < geom.WordsPerSegment() && !varied; w++ {
		first, _ := c.ReadWord(w * 2)
		for r := 0; r < 5; r++ {
			v, _ := c.ReadWord(w * 2)
			if v != first {
				varied = true
				break
			}
		}
	}
	if !varied {
		t.Error("no read noise observed on a mid-transition segment")
	}
}

func TestPartialEraseContinuation(t *testing.T) {
	// Two consecutive partial erases accumulate: 10µs + 30µs ≈ erased.
	c := newTestController(t)
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	zeros := make([]uint64, geom.WordsPerSegment())
	if err := c.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ProgramBlock(0, zeros); err != nil {
		t.Fatal(err)
	}
	if err := c.PartialEraseSegment(0, 10*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := c.PartialEraseSegment(0, 30*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	words, _ := c.ReadSegment(0)
	for w, v := range words {
		if v != 0xFFFF {
			t.Fatalf("word %d = %#x after cumulative 40µs erase", w, v)
		}
	}
}

func TestPartialEraseFullPulseIsErase(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	zeros := make([]uint64, geom.WordsPerSegment())
	if err := c.ProgramBlock(0, zeros); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().Erases
	if err := c.PartialEraseSegment(0, c.Timing().SegmentErase); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Erases != before+1 {
		t.Error("nominal-length pulse should count as a full erase")
	}
	if c.Stats().PartialErases != 0 {
		t.Error("nominal-length pulse should not count as partial")
	}
}

func TestPartialEraseRejectsNegative(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	if err := c.PartialEraseSegment(0, -time.Microsecond); err == nil {
		t.Error("negative pulse accepted")
	}
}

func TestAdaptiveEraseEquivalentStateFasterTime(t *testing.T) {
	full := newSeededController(t, 42)
	adaptive := newSeededController(t, 42)
	mustUnlock(t, full)
	mustUnlock(t, adaptive)
	geom := full.Array().Geometry()
	zeros := make([]uint64, geom.WordsPerSegment())
	for _, c := range []*Controller{full, adaptive} {
		if err := c.ProgramBlock(0, zeros); err != nil {
			t.Fatal(err)
		}
	}
	if err := full.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	pulse, err := adaptive.EraseSegmentAdaptive(0)
	if err != nil {
		t.Fatal(err)
	}
	if pulse >= full.Timing().SegmentErase {
		t.Errorf("adaptive pulse %v not faster than nominal %v", pulse, full.Timing().SegmentErase)
	}
	// Identical final state: same wear and both fully erased.
	for i := 0; i < geom.CellsPerSegment(); i++ {
		if full.Array().Wear(i) != adaptive.Array().Wear(i) {
			t.Fatalf("wear diverged at cell %d: %v vs %v", i, full.Array().Wear(i), adaptive.Array().Wear(i))
		}
		if adaptive.Array().Programmed(i) {
			t.Fatalf("cell %d still programmed after adaptive erase", i)
		}
	}
	if adaptive.Clock().Now() >= full.Clock().Now() {
		t.Errorf("adaptive total %v not faster than nominal %v", adaptive.Clock().Now(), full.Clock().Now())
	}
}

func TestTimeAccounting(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	tm := c.Timing()
	if err := c.EraseSegment(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ProgramWord(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadWord(0); err != nil {
		t.Fatal(err)
	}
	l := c.Ledger()
	if got := l.Of(vclock.OpErase); got != tm.SegmentErase {
		t.Errorf("erase time = %v, want %v", got, tm.SegmentErase)
	}
	if got := l.Of(vclock.OpProgram); got != tm.WordProgram {
		t.Errorf("program time = %v, want %v", got, tm.WordProgram)
	}
	if got := l.Of(vclock.OpRead); got != tm.WordRead {
		t.Errorf("read time = %v, want %v", got, tm.WordRead)
	}
	if got := l.Of(vclock.OpOverhead); got != 2*tm.OpSetup {
		t.Errorf("overhead = %v, want %v", got, 2*tm.OpSetup)
	}
	if c.Clock().Now() != l.Total() {
		t.Errorf("clock %v != ledger total %v", c.Clock().Now(), l.Total())
	}
}

func TestBaselineImprintCycleCostMatchesPaper(t *testing.T) {
	// One baseline imprint cycle = nominal erase + 256-word block program
	// ≈ 34.5 ms, which over 40 K cycles gives the paper's ~1380 s.
	tm := MSP430Timing()
	cycle := tm.SegmentErase + tm.BlockProgramFirst + 255*tm.BlockProgramNext + 2*tm.OpSetup
	total40K := 40_000 * cycle
	if total40K < 1300*time.Second || total40K > 1450*time.Second {
		t.Errorf("40K baseline imprint = %v, paper reports ~1380 s", total40K)
	}
}

func TestReadSegmentLength(t *testing.T) {
	c := newTestController(t)
	words, err := c.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != c.Array().Geometry().WordsPerSegment() {
		t.Fatalf("ReadSegment returned %d words", len(words))
	}
}

func TestStatsCounters(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	_ = c.EraseSegment(0)
	_ = c.ProgramWord(0, 0)
	_ = c.ProgramBlock(4, []uint64{1, 2})
	_, _ = c.ReadWord(0)
	_ = c.PartialEraseSegment(0, time.Microsecond)
	s := c.Stats()
	if s.Erases != 1 || s.ProgramWords != 3 || s.ReadWords != 1 ||
		s.PartialErases != 1 || s.EmergencyExits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStressEquivalence(t *testing.T) {
	// StressSegmentWords must produce bit-identical wear and state to the
	// literal erase/program loop.
	loop := newSeededController(t, 7)
	batch := newSeededController(t, 7)
	mustUnlock(t, loop)
	mustUnlock(t, batch)
	geom := loop.Array().Geometry()
	values := make([]uint64, geom.WordsPerSegment())
	for i := range values {
		values[i] = uint64(0x5443) // "TC" watermark in every word
	}
	const n = 25
	for cycle := 0; cycle < n; cycle++ {
		if err := loop.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		if err := loop.ProgramBlock(0, values); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.StressSegmentWords(0, values, n, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < geom.CellsPerSegment(); i++ {
		if loop.Array().Wear(i) != batch.Array().Wear(i) {
			t.Fatalf("wear diverged at cell %d: loop %v batch %v", i, loop.Array().Wear(i), batch.Array().Wear(i))
		}
		if loop.Array().Programmed(i) != batch.Array().Programmed(i) {
			t.Fatalf("state diverged at cell %d", i)
		}
	}
	if loop.Clock().Now() != batch.Clock().Now() {
		t.Errorf("time diverged: loop %v batch %v", loop.Clock().Now(), batch.Clock().Now())
	}
}

func TestStressEquivalenceFromDirtyState(t *testing.T) {
	// Equivalence must hold when the segment starts partially programmed.
	loop := newSeededController(t, 9)
	batch := newSeededController(t, 9)
	mustUnlock(t, loop)
	mustUnlock(t, batch)
	geom := loop.Array().Geometry()
	for _, c := range []*Controller{loop, batch} {
		if err := c.ProgramWord(0, 0x00FF); err != nil {
			t.Fatal(err)
		}
	}
	values := make([]uint64, geom.WordsPerSegment())
	for i := range values {
		values[i] = 0xA5A5
	}
	const n = 10
	for cycle := 0; cycle < n; cycle++ {
		if err := loop.EraseSegment(0); err != nil {
			t.Fatal(err)
		}
		if err := loop.ProgramBlock(0, values); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.StressSegmentWords(0, values, n, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < geom.CellsPerSegment(); i++ {
		if loop.Array().Wear(i) != batch.Array().Wear(i) {
			t.Fatalf("wear diverged at cell %d: loop %v batch %v", i, loop.Array().Wear(i), batch.Array().Wear(i))
		}
	}
}

func TestStressValidation(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	geom := c.Array().Geometry()
	good := make([]uint64, geom.WordsPerSegment())
	if err := c.StressSegmentWords(0, good[:10], 5, false); err == nil {
		t.Error("short values accepted")
	}
	if err := c.StressSegmentWords(0, good, -1, false); err == nil {
		t.Error("negative cycles accepted")
	}
	if err := c.StressSegmentWords(0, good, 0, false); err != nil {
		t.Errorf("zero cycles should be a no-op: %v", err)
	}
	c.Lock()
	if err := c.StressSegmentWords(0, good, 1, false); err == nil {
		t.Error("stress while locked accepted")
	}
}

func TestStressAdaptiveFasterThanBaseline(t *testing.T) {
	base := newSeededController(t, 11)
	fast := newSeededController(t, 11)
	mustUnlock(t, base)
	mustUnlock(t, fast)
	geom := base.Array().Geometry()
	values := make([]uint64, geom.WordsPerSegment())
	for i := range values {
		values[i] = 0x5443
	}
	const n = 1000
	if err := base.StressSegmentWords(0, values, n, false); err != nil {
		t.Fatal(err)
	}
	if err := fast.StressSegmentWords(0, values, n, true); err != nil {
		t.Fatal(err)
	}
	ratio := float64(base.Clock().Now()) / float64(fast.Clock().Now())
	if ratio < 2 {
		t.Errorf("adaptive speedup = %.2fx, want > 2x (paper: ~3.5x)", ratio)
	}
	// Identical physical outcome regardless of erase strategy.
	for i := 0; i < geom.CellsPerSegment(); i++ {
		if base.Array().Wear(i) != fast.Array().Wear(i) {
			t.Fatalf("wear diverged at cell %d", i)
		}
	}
}

func TestSegmentMeanTau(t *testing.T) {
	c := newTestController(t)
	mustUnlock(t, c)
	meanFresh, maxFresh, err := c.SegmentMeanTau(0)
	if err != nil {
		t.Fatal(err)
	}
	geom := c.Array().Geometry()
	values := make([]uint64, geom.WordsPerSegment()) // all zeros
	if err := c.StressSegmentWords(0, values, 20_000, false); err != nil {
		t.Fatal(err)
	}
	meanWorn, maxWorn, err := c.SegmentMeanTau(0)
	if err != nil {
		t.Fatal(err)
	}
	if !(meanWorn > meanFresh && maxWorn > maxFresh) {
		t.Errorf("tau should grow with stress: mean %v->%v max %v->%v",
			meanFresh, meanWorn, maxFresh, maxWorn)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{Op: "program", Addr: 0x1FF, Msg: "boom"}
	want := "flashctl: program at 0x1ff: boom"
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
	e2 := &Error{Op: "unlock", Addr: -1, Msg: "bad key"}
	if e2.Error() != "flashctl: unlock: bad key" {
		t.Errorf("Error() = %q", e2.Error())
	}
	e3 := &Error{Op: "x", Addr: 0, Msg: "m"}
	if e3.Error() != "flashctl: x at 0x0: m" {
		t.Errorf("Error() = %q", e3.Error())
	}
}

func BenchmarkProgramBlockSegment(b *testing.B) {
	arr, _ := nor.NewArray(nor.Small())
	model, _ := floatgate.NewModel(floatgate.DefaultParams(), 1)
	c, _ := New(Config{Array: arr, Model: model, Timing: MSP430Timing()})
	_ = c.Unlock(UnlockKey)
	values := make([]uint64, arr.Geometry().WordsPerSegment())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.EraseSegment(0); err != nil {
			b.Fatal(err)
		}
		if err := c.ProgramBlock(0, values); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialEraseSegment(b *testing.B) {
	arr, _ := nor.NewArray(nor.Small())
	model, _ := floatgate.NewModel(floatgate.DefaultParams(), 1)
	c, _ := New(Config{Array: arr, Model: model, Timing: MSP430Timing()})
	_ = c.Unlock(UnlockKey)
	values := make([]uint64, arr.Geometry().WordsPerSegment())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.EraseSegment(0)
		_ = c.ProgramBlock(0, values)
		if err := c.PartialEraseSegment(0, 23*time.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}
