package baseline

import (
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/wmcode"
)

var key = []byte("k")

func factoryCfg() counterfeit.FactoryConfig {
	return counterfeit.FactoryConfig{
		Fab:   mcu.Fab(mcu.PartSmallSim()),
		Codec: wmcode.Codec{Key: key},
	}
}

func fabricate(t *testing.T, class counterfeit.ChipClass, seed uint64) device.Device {
	t.Helper()
	dev, err := counterfeit.Fabricate(class, factoryCfg(), seed, 7)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestMetadataCheckAcceptsCurrentPractice(t *testing.T) {
	// The whole problem with the current practice: a plain metadata
	// forgery reads back as a perfectly valid record.
	dev := fabricate(t, counterfeit.ClassMetadataForgery, 1)
	p, ok, err := MetadataCheck(dev, 0, wmcode.Codec{Key: key}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("forged metadata should pass the naive check")
	}
	if p.Status != wmcode.StatusAccept {
		t.Errorf("forged status = %v", p.Status)
	}
}

func TestMetadataCheckRejectsBlank(t *testing.T) {
	dev := fabricate(t, counterfeit.ClassUnmarked, 2)
	_, ok, err := MetadataCheck(dev, 0, wmcode.Codec{Key: key}, 7)
	if err == nil && ok {
		t.Fatal("blank chip passed metadata check")
	}
}

func TestMetadataCheckValidation(t *testing.T) {
	dev := fabricate(t, counterfeit.ClassUnmarked, 3)
	if _, _, err := MetadataCheck(dev, 0, wmcode.Codec{Key: key}, 100); err == nil {
		t.Error("oversized replica count accepted")
	}
}

func TestEraseTimingDetectorSeparates(t *testing.T) {
	fresh := fabricate(t, counterfeit.ClassGenuineAccept, 4)
	recycled := fabricate(t, counterfeit.ClassRecycled, 5)
	det := &EraseTimingDetector{}
	segAddr := fresh.Geometry().SegmentBytes // first data segment
	af, err := det.Assess(fresh, segAddr)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := det.Assess(recycled, segAddr)
	if err != nil {
		t.Fatal(err)
	}
	if af.UsedFlash {
		t.Errorf("fresh chip flagged used (metric %.3f >= %.3f)", af.Metric, af.Threshold)
	}
	if !ar.UsedFlash {
		t.Errorf("recycled chip not flagged (metric %.3f <= %.3f)", ar.Metric, ar.Threshold)
	}
}

func TestEraseTimingDetectorBlindToForgery(t *testing.T) {
	// The prior-work gap: a fresh forged chip looks pristine.
	forged := fabricate(t, counterfeit.ClassMetadataForgery, 6)
	det := &EraseTimingDetector{}
	a, err := det.Assess(forged, forged.Geometry().SegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsedFlash {
		t.Error("erase-timing detector cannot know about forgery, yet flagged the chip")
	}
}

func TestFFDDetectorSeparates(t *testing.T) {
	det := &FFDDetector{}
	if err := CalibrateFFD(mcu.Fab(mcu.PartSmallSim()), []uint64{100, 101, 102}, det); err != nil {
		t.Fatal(err)
	}
	if det.FreshMedian <= 0 {
		t.Fatal("calibration produced no golden reference")
	}
	fresh := fabricate(t, counterfeit.ClassGenuineAccept, 7)
	recycled := fabricate(t, counterfeit.ClassRecycled, 8)
	segAddr := fresh.Geometry().SegmentBytes
	af, err := det.Assess(fresh, segAddr)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := det.Assess(recycled, segAddr)
	if err != nil {
		t.Fatal(err)
	}
	if af.UsedFlash {
		t.Errorf("fresh chip flagged used (median %.1fµs threshold %.1fµs)", af.Metric, af.Threshold)
	}
	if !ar.UsedFlash {
		t.Errorf("recycled chip not flagged (median %.1fµs threshold %.1fµs)", ar.Metric, ar.Threshold)
	}
}

func TestFFDRequiresCalibration(t *testing.T) {
	det := &FFDDetector{}
	dev := fabricate(t, counterfeit.ClassGenuineAccept, 9)
	if _, err := det.Assess(dev, 512); err == nil {
		t.Fatal("uncalibrated FFD accepted")
	}
}

func TestCalibrateFFDValidation(t *testing.T) {
	if err := CalibrateFFD(mcu.Fab(mcu.PartSmallSim()), nil, &FFDDetector{}); err == nil {
		t.Fatal("calibration without seeds accepted")
	}
}

func TestDetectorsCustomThresholds(t *testing.T) {
	det := &EraseTimingDetector{TPEW: 30 * time.Microsecond, Threshold: 0.5, Reads: 1}
	dev := fabricate(t, counterfeit.ClassRecycled, 10)
	a, err := det.Assess(dev, dev.Geometry().SegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if a.Threshold != 0.5 {
		t.Errorf("threshold override ignored: %v", a.Threshold)
	}
}
