// Package baseline implements the prior-work comparators the paper
// positions Flashmark against (§I):
//
//   - MetadataCheck — the "current practice": read the manufacturer
//     metadata programmed into the reserved segment and trust it. Easily
//     erased/forged/fabricated by counterfeiters; included to demonstrate
//     exactly that.
//   - FFDDetector — a fake-flash/recycling detector in the spirit of
//     Guo et al. [6]: sweep partial *program* operations and compare the
//     segment's programming-speed profile against a golden (fresh)
//     reference. Worn oxide programs faster.
//   - EraseTimingDetector — a recycled-flash detector in the spirit of
//     Sakib et al. [7]: one or more timed partial *erase* rounds; worn
//     oxide erases slower.
//
// Both physical detectors flag recycled chips but carry no identity or
// die-sort information, so they cannot catch rebranded, out-of-spec, or
// cloned parts — the gap Flashmark fills. The supply-chain experiment
// (experiment TAB-SUPPLY) measures this quantitatively.
package baseline

import (
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/wmcode"
)

// Assessment is a physical detector's finding for one chip.
type Assessment struct {
	UsedFlash bool    // the detector believes the flash saw heavy prior use
	Metric    float64 // the detector's raw decision metric
	Threshold float64 // the decision threshold applied
}

// MetadataCheck is the current practice: decode whatever bytes sit in the
// reserved metadata segment. It returns the claimed payload and whether a
// structurally valid record was found. It has no defense against forgery:
// anyone can erase the segment and program a fresh record.
func MetadataCheck(dev device.Device, segAddr int, codec wmcode.Codec, replicas int) (wmcode.Payload, bool, error) {
	words, err := dev.ReadSegment(segAddr)
	if err != nil {
		return wmcode.Payload{}, false, err
	}
	if replicas <= 0 {
		replicas = 1
	}
	payloadWords := codec.PayloadWords()
	if payloadWords*replicas > len(words) {
		return wmcode.Payload{}, false, fmt.Errorf("baseline: segment too small for %d replicas", replicas)
	}
	voted, err := core.MajorityDecode(words, payloadWords, replicas, dev.Geometry().WordBits())
	if err != nil {
		return wmcode.Payload{}, false, err
	}
	p, rep, err := codec.Decode(voted)
	if err != nil || rep.Tampered() {
		return p, false, nil
	}
	return p, true, nil
}

// FFDDetector detects prior flash use via partial-program sweeps [6].
type FFDDetector struct {
	// SweepLo/SweepHi/Step bound the partial program sweep. Zero values
	// select 30–60 µs in 1 µs steps.
	SweepLo, SweepHi, Step time.Duration
	// FreshMedian is the golden median programming time for this device
	// family, established on known-fresh parts (see CalibrateFFD).
	FreshMedian time.Duration
	// Tolerance is the fractional drop below FreshMedian that still
	// counts as fresh (default 0.03: worn chips program >3% faster).
	Tolerance float64
}

// medianProgramTime sweeps partial programs on a segment and returns the
// pulse at which at least half the cells read programmed.
func (d *FFDDetector) medianProgramTime(dev device.Device, segAddr int) (time.Duration, error) {
	lo, hi, step := d.SweepLo, d.SweepHi, d.Step
	if lo == 0 {
		lo = 30 * time.Microsecond
	}
	if hi == 0 {
		hi = 60 * time.Microsecond
	}
	if step == 0 {
		step = 500 * time.Nanosecond
	}
	pp, ok := device.As[device.PartialProgrammer](dev)
	if !ok {
		return 0, fmt.Errorf("baseline: %s does not support partial program sweeps", dev.PartName())
	}
	geom := dev.Geometry()
	half := geom.CellsPerSegment() / 2
	if err := dev.Unlock(); err != nil {
		return 0, err
	}
	defer dev.Lock()
	for pulse := lo; pulse <= hi; pulse += step {
		if err := dev.EraseSegment(segAddr); err != nil {
			return 0, err
		}
		if err := pp.PartialProgramSegment(segAddr, pulse); err != nil {
			return 0, err
		}
		words, err := dev.ReadSegment(segAddr)
		if err != nil {
			return 0, err
		}
		programmed := 0
		for _, w := range words {
			for b := 0; b < geom.WordBits(); b++ {
				if w&(1<<uint(b)) == 0 {
					programmed++
				}
			}
		}
		if programmed >= half {
			return pulse, nil
		}
	}
	return hi, nil
}

// Assess classifies one data segment of the chip.
func (d *FFDDetector) Assess(dev device.Device, segAddr int) (Assessment, error) {
	if d.FreshMedian <= 0 {
		return Assessment{}, fmt.Errorf("baseline: FFD detector has no golden reference; run CalibrateFFD")
	}
	tol := d.Tolerance
	if tol == 0 {
		tol = 0.03
	}
	median, err := d.medianProgramTime(dev, segAddr)
	if err != nil {
		return Assessment{}, err
	}
	threshold := float64(d.FreshMedian) * (1 - tol)
	return Assessment{
		UsedFlash: float64(median) < threshold,
		Metric:    float64(median) / float64(time.Microsecond),
		Threshold: threshold / float64(time.Microsecond),
	}, nil
}

// CalibrateFFD establishes the golden fresh median on reference devices.
func CalibrateFFD(fab device.Fab, seeds []uint64, d *FFDDetector) error {
	if len(seeds) == 0 {
		return fmt.Errorf("baseline: FFD calibration needs reference dice")
	}
	var total time.Duration
	for _, seed := range seeds {
		dev, err := fab(seed)
		if err != nil {
			return err
		}
		m, err := d.medianProgramTime(dev, 0)
		if err != nil {
			return err
		}
		total += m
	}
	d.FreshMedian = total / time.Duration(len(seeds))
	return nil
}

// EraseTimingDetector detects prior flash use via timed partial erases [7].
type EraseTimingDetector struct {
	// TPEW is the probe partial erase time (zero selects 25 µs).
	TPEW time.Duration
	// Threshold is the programmed-cell fraction above which the segment
	// counts as worn (zero selects 0.04).
	Threshold float64
	// Reads is the majority read count (zero selects 3).
	Reads int
}

// Assess classifies one data segment of the chip.
func (d *EraseTimingDetector) Assess(dev device.Device, segAddr int) (Assessment, error) {
	tpew := d.TPEW
	if tpew == 0 {
		tpew = 25 * time.Microsecond
	}
	threshold := d.Threshold
	if threshold == 0 {
		threshold = 0.04
	}
	reads := d.Reads
	if reads == 0 {
		reads = 3
	}
	programmed, err := core.DetectStress(dev, segAddr, tpew, reads)
	if err != nil {
		return Assessment{}, err
	}
	frac := float64(programmed) / float64(dev.Geometry().CellsPerSegment())
	return Assessment{
		UsedFlash: frac > threshold,
		Metric:    frac,
		Threshold: threshold,
	}, nil
}
