package experiment

import "testing"

func TestTemperatureCompensation(t *testing.T) {
	res, err := Temperature(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Uncompensated verification drifts at the hot end of the range.
	if res.FixedBER[70] < res.FixedBER[25]+2 {
		t.Errorf("fixed t_PEW should degrade at 70C: 25C=%.2f%% 70C=%.2f%%",
			res.FixedBER[25], res.FixedBER[70])
	}
	// Compensation holds the BER near the calibrated point (single-read
	// extraction noise allows a couple of points of slack).
	for _, temp := range []int{0, 70} {
		if res.CompensatedBER[temp] > res.CompensatedBER[25]+2.5 {
			t.Errorf("compensated BER at %dC = %.2f%%, calibrated %.2f%%",
				temp, res.CompensatedBER[temp], res.CompensatedBER[25])
		}
	}
}
