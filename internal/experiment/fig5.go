package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("fig5", RunFig5) }

// Fig5Result is the structured outcome of the Fig. 5 reproduction.
type Fig5Result struct {
	Artifact *Artifact
	// BestTPEW is the probe time maximizing distinguishable bits.
	BestTPEW time.Duration
	// Distinguishable is the bit count separable at BestTPEW
	// (paper: 3,833 of 4,096 at 23 µs).
	Distinguishable int
	// Cells is the segment size in bits.
	Cells int
}

// Fig5 reproduces the single-round stress detection demonstration: one
// partial erase at t_PEW separates a 50 K-stressed segment from a fresh
// one (paper Fig. 5).
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	const stress = 50_000
	step := 500 * time.Nanosecond
	lo, hi := 18*time.Microsecond, 32*time.Microsecond
	if cfg.Fast {
		step = 2 * time.Microsecond
	}

	// The two devices (fresh, 50 K-stressed) are independent chips; each
	// item fabricates its device and runs the full t_PEW sweep on it, so
	// both sweeps proceed concurrently with per-device operation order —
	// and therefore per-device physics — unchanged.
	sweeps, err := parallel.Map(cfg.pool(), 2, func(i int) ([]int, error) {
		var dev device.Device
		var err error
		if i == 0 {
			dev, err = cfg.newDevice(5)
		} else {
			dev, err = cfg.newDevice(55)
		}
		if err != nil {
			return nil, err
		}
		if i == 1 {
			zeros := make([]uint64, cfg.Part.Geometry.WordsPerSegment())
			if err := core.ImprintSegment(dev, 0, zeros, core.ImprintOptions{NPE: stress, Accelerated: true}); err != nil {
				return nil, err
			}
		}
		var counts []int
		for t := lo; t <= hi; t += step {
			n, err := core.DetectStress(dev, 0, t, 1)
			if err != nil {
				return nil, err
			}
			counts = append(counts, n)
		}
		return counts, nil
	})
	if err != nil {
		return nil, err
	}

	cells := cfg.Part.Geometry.CellsPerSegment()
	res := &Fig5Result{Cells: cells}
	var freshSeries, wornSeries report.Series
	freshSeries.Name = "fresh (0 K)"
	wornSeries.Name = "stressed (50 K)"
	tbl := report.Table{
		Title:   "Fig. 5 — one-round stress detection: programmed cells after partial erase at t_PEW",
		Columns: []string{"t_PEW (µs)", "fresh cells_0", "50K cells_0", "distinguishable bits"},
	}
	for i, t := 0, lo; t <= hi; i, t = i+1, t+step {
		fCount, wCount := sweeps[0][i], sweeps[1][i]
		// A bit distinguishes the two when the fresh cell reads erased
		// and the stressed cell reads programmed; with independent cells
		// the expected count is the product of the marginal fractions.
		d := int(float64(cells-fCount) / float64(cells) * float64(wCount))
		tbl.AddRow(us(t), fCount, wCount, d)
		freshSeries.X = append(freshSeries.X, us(t))
		freshSeries.Y = append(freshSeries.Y, float64(fCount))
		wornSeries.X = append(wornSeries.X, us(t))
		wornSeries.Y = append(wornSeries.Y, float64(wCount))
		if d > res.Distinguishable {
			res.Distinguishable = d
			res.BestTPEW = t
		}
	}
	tbl.AddNote("paper: t_PEW = 23 µs distinguishes 3,833 of 4,096 bits")
	tbl.AddNote("measured best: t_PEW = %.1f µs distinguishes %d of %d bits", us(res.BestTPEW), res.Distinguishable, cells)
	res.Artifact = &Artifact{
		ID:     "fig5",
		Title:  "Detecting stress-induced changes with a single partial erase round",
		Tables: []report.Table{tbl},
		Plots: []report.Plot{{
			Title:  "Fig. 5 — programmed cells vs t_PEW",
			XLabel: "t_PEW (µs)",
			YLabel: "cells_0",
			Series: []report.Series{freshSeries, wornSeries},
		}},
	}
	return res, nil
}

// RunFig5 adapts Fig5 to the registry.
func RunFig5(cfg Config) (*Artifact, error) {
	res, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
