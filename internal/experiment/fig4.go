package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("fig4", RunFig4) }

// Fig4Result carries the structured outcome of the Fig. 4 reproduction.
type Fig4Result struct {
	Artifact *Artifact
	// AllErased maps stress level (cycles) to the minimum t_PE at which
	// every cell of the stressed segment reads erased.
	AllErased map[int]time.Duration
	// Curves holds cells_0 per stress level for shape assertions.
	Curves map[int][]core.CharacterizePoint
}

// paperFig4AllErased are the paper's reported minimum all-erased times.
var paperFig4AllErased = map[int]float64{
	0: 35, 20_000: 115, 40_000: 203, 60_000: 226, 80_000: 687, 100_000: 811,
}

// Fig4 reproduces the characterization sweep: the state of flash cells in
// a segment as a function of the partial erase time, per stress level
// (paper Fig. 4), using the Fig. 3 procedure.
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	levels := []int{0, 20_000, 40_000, 60_000, 80_000, 100_000}
	step := 2 * time.Microsecond
	if cfg.Fast {
		levels = []int{0, 20_000, 50_000}
		step = 5 * time.Microsecond
	}
	res := &Fig4Result{
		AllErased: make(map[int]time.Duration),
		Curves:    make(map[int][]core.CharacterizePoint),
	}
	tbl := report.Table{
		Title:   "Fig. 4 — minimum t_PE at which all cells read erased, per stress level",
		Columns: []string{"stress (P/E)", "all-erased t_PE (µs)", "paper (µs)"},
	}
	var plot report.Plot
	plot.Title = "Fig. 4 — cells_0 (programmed cells) vs t_PE"
	plot.XLabel = "t_PE (µs)"
	plot.YLabel = "cells_0"

	// Each stress level is an independent device: fan the fabrication,
	// pre-conditioning and characterization sweep out on the engine and
	// assemble tables/plots serially, in level order, from the indexed
	// results.
	type levelOut struct {
		points []core.CharacterizePoint
		at     time.Duration
	}
	outs, err := parallel.Map(cfg.pool(), len(levels), func(i int) (levelOut, error) {
		level := levels[i]
		dev, err := cfg.newDevice(uint64(level) + 4)
		if err != nil {
			return levelOut{}, err
		}
		// Pre-condition the segment: level P/E cycles with every cell
		// programmed each cycle (the paper's stress procedure).
		if level > 0 {
			zeros := make([]uint64, cfg.Part.Geometry.WordsPerSegment())
			err = core.ImprintSegment(dev, 0, zeros, core.ImprintOptions{NPE: level, Accelerated: true})
			if err != nil {
				return levelOut{}, err
			}
		}
		points, err := core.CharacterizeSegment(dev, 0, core.CharacterizeOptions{Step: step, Reads: 3})
		if err != nil {
			return levelOut{}, err
		}
		at, ok := core.AllErasedTime(points)
		if !ok {
			at = dev.NominalEraseTime()
		}
		return levelOut{points: points, at: at}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, level := range levels {
		points, at := outs[i].points, outs[i].at
		res.Curves[level] = points
		res.AllErased[level] = at
		if p, ok := paperFig4AllErased[level]; ok {
			tbl.AddRow(level, us(at), p)
		} else {
			tbl.AddRow(level, us(at), "-")
		}
		series := report.Series{Name: levelName(level)}
		for _, pt := range points {
			series.X = append(series.X, us(pt.TPE))
			series.Y = append(series.Y, float64(pt.Cells0))
		}
		plot.Series = append(plot.Series, series)
	}
	tbl.AddNote("segment: %d cells; sweep step %v; N=3 majority reads", cfg.Part.Geometry.CellsPerSegment(), step)
	res.Artifact = &Artifact{
		ID:     "fig4",
		Title:  "Characterizing flash cell physical properties via partial erase",
		Tables: []report.Table{tbl},
		Plots:  []report.Plot{plot},
	}
	return res, nil
}

func levelName(level int) string {
	return itoa(level/1000) + " K"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// RunFig4 adapts Fig4 to the registry.
func RunFig4(cfg Config) (*Artifact, error) {
	res, err := Fig4(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
