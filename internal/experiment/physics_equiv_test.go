package experiment

import (
	"strings"
	"testing"

	"github.com/flashmark/flashmark/internal/device"
)

// renderAllPhysics renders every registered experiment artifact with the
// devices pinned to the given physics path.
func renderAllPhysics(t *testing.T, p device.PhysicsPath) string {
	t.Helper()
	cfg := fastCfg()
	cfg.Physics = p
	var b strings.Builder
	for _, id := range IDs() {
		a, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("physics=%s %s: %v", p, id, err)
		}
		if err := a.WriteText(&b); err != nil {
			t.Fatalf("physics=%s %s render: %v", p, id, err)
		}
	}
	return b.String()
}

// TestPhysicsPathsRenderIdenticalArtifacts is the golden-equivalence
// guarantee of the batched physics fast path: every experiment in the
// registry — imprints, extractions, characterization sweeps, the NAND
// study, the counterfeit population of the supply-chain experiment —
// renders byte-identical artifacts whether the devices run the batched
// fast path or the per-cell reference physics.
func TestPhysicsPathsRenderIdenticalArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full registry twice")
	}
	want := renderAllPhysics(t, device.PhysicsReference)
	got := renderAllPhysics(t, device.PhysicsFast)
	if got == want {
		return
	}
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := range wl {
		if i >= len(gl) || wl[i] != gl[i] {
			t.Fatalf("fast path drifted from reference at line %d:\nreference: %q\nfast:      %q", i+1, wl[i], gl[i])
		}
	}
	t.Fatalf("fast path output differs in length: %d vs %d bytes", len(got), len(want))
}
