package experiment

import (
	"bytes"
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/ecc"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("ecc", RunECCStudy) }

// ECCSchemeResult is one protection scheme's outcome at one stress level.
type ECCSchemeResult struct {
	Scheme     string
	Redundancy float64 // stored bits per payload bit
	RawBitErrs int     // channel errors before decoding
	ByteErrs   int     // payload byte errors after decoding
}

// ECCStudyResult is the structured outcome of the replication-vs-ECC
// study (paper §V: "An alternative to watermark data replication is to
// use error correction techniques").
type ECCStudyResult struct {
	Artifact *Artifact
	// ByNPE maps stress level to per-scheme results.
	ByNPE map[int][]ECCSchemeResult
}

// eccPayload is the study's common 46-byte payload (big enough that the
// per-scheme error counts are statistically stable).
var eccPayload = []byte("TC DIE-1001 ACCEPT GRADE-2 WK27 LOT-FM26A XYZ ")

// ECCStudy imprints the same payload under several protection schemes —
// no protection, 3/7-way replication, SECDED(16,11), and SECDED combined
// with 3-way replication — and compares recovery after extraction.
func ECCStudy(cfg Config) (*ECCStudyResult, error) {
	cfg = cfg.withDefaults()
	levels := []int{40_000, 70_000}
	if cfg.Fast {
		levels = []int{40_000}
	}
	segWords := cfg.Part.Geometry.WordsPerSegment()
	bits := cfg.Part.Geometry.WordBits()
	tpew := 24 * time.Microsecond

	// bytesToWords packs the payload two bytes per 16-bit word.
	bytesToWords := func(p []byte) []uint64 {
		words := make([]uint64, (len(p)+1)/2)
		for i, b := range p {
			words[i/2] |= uint64(b) << uint(8*(i%2))
		}
		return words
	}
	wordsToBytes := func(w []uint64, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(w[i/2] >> uint(8*(i%2)))
		}
		return out
	}
	byteErrs := func(got []byte) int {
		n := 0
		for i := range eccPayload {
			if i >= len(got) || got[i] != eccPayload[i] {
				n++
			}
		}
		return n
	}

	type scheme struct {
		name   string
		encode func() []uint64
		decode func(extracted []uint64) (recovered []byte, rawErrs int, err error)
	}
	rawWords := bytesToWords(eccPayload)
	schemes := []scheme{
		{
			name:   "none",
			encode: func() []uint64 { return rawWords },
			decode: func(x []uint64) ([]byte, int, error) {
				raw := core.BitErrors(x[:len(rawWords)], rawWords, bits)
				return wordsToBytes(x, len(eccPayload)), raw, nil
			},
		},
		{
			name: "3-replica",
			encode: func() []uint64 {
				img, _ := core.Replicate(rawWords, 3, len(rawWords)*3)
				return img
			},
			decode: func(x []uint64) ([]byte, int, error) {
				raw := core.BitErrors(x[:len(rawWords)], rawWords, bits)
				voted, err := core.MajorityDecode(x, len(rawWords), 3, bits)
				if err != nil {
					return nil, 0, err
				}
				return wordsToBytes(voted, len(eccPayload)), raw, nil
			},
		},
		{
			name: "7-replica",
			encode: func() []uint64 {
				img, _ := core.Replicate(rawWords, 7, len(rawWords)*7)
				return img
			},
			decode: func(x []uint64) ([]byte, int, error) {
				raw := core.BitErrors(x[:len(rawWords)], rawWords, bits)
				voted, err := core.MajorityDecode(x, len(rawWords), 7, bits)
				if err != nil {
					return nil, 0, err
				}
				return wordsToBytes(voted, len(eccPayload)), raw, nil
			},
		},
		{
			name:   "secded",
			encode: func() []uint64 { return ecc.EncodeBytes(eccPayload) },
			decode: func(x []uint64) ([]byte, int, error) {
				enc := ecc.EncodeBytes(eccPayload)
				raw := core.BitErrors(x[:len(enc)], enc, bits)
				got, _, err := ecc.DecodeBytes(x, len(eccPayload))
				return got, raw, err
			},
		},
		{
			name: "secded+3rep",
			encode: func() []uint64 {
				enc := ecc.EncodeBytes(eccPayload)
				img, _ := core.Replicate(enc, 3, len(enc)*3)
				return img
			},
			decode: func(x []uint64) ([]byte, int, error) {
				enc := ecc.EncodeBytes(eccPayload)
				raw := core.BitErrors(x[:len(enc)], enc, bits)
				voted, err := core.MajorityDecode(x, len(enc), 3, bits)
				if err != nil {
					return nil, 0, err
				}
				got, _, err := ecc.DecodeBytes(voted, len(eccPayload))
				return got, raw, err
			},
		},
	}

	res := &ECCStudyResult{ByNPE: map[int][]ECCSchemeResult{}}
	tbl := report.Table{
		Title:   "EXT-ECC — replication vs error correction (paper §V alternative)",
		Columns: []string{"N_PE", "scheme", "redundancy (x)", "raw bit errs", "payload byte errs (of " + itoa(len(eccPayload)) + ")"},
	}
	payloadBits := float64(len(eccPayload) * 8)
	// The (N_PE × scheme) grid fans out one imprint/extract/decode per
	// cell (each on its own device); a scheme too large for the segment
	// yields a nil cell and is skipped at assembly, exactly as the serial
	// loop's `continue` did.
	nSchemes := len(schemes)
	outs, err := parallel.Map(cfg.pool(), len(levels)*nSchemes, func(idx int) (*ECCSchemeResult, error) {
		npe, s := levels[idx/nSchemes], schemes[idx%nSchemes]
		stored := s.encode()
		if len(stored) > segWords {
			return nil, nil
		}
		img, err := core.Replicate(stored, 1, segWords)
		if err != nil {
			return nil, err
		}
		dev, err := cfg.newDevice(uint64(npe)*13 + uint64(len(s.name)))
		if err != nil {
			return nil, err
		}
		if err := core.ImprintSegment(dev, 0, img, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return nil, err
		}
		extracted, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: tpew, Reads: 1})
		if err != nil {
			return nil, err
		}
		recovered, rawErrs, err := s.decode(extracted)
		if err != nil {
			return nil, err
		}
		r := &ECCSchemeResult{
			Scheme:     s.name,
			Redundancy: float64(len(stored)*bits) / payloadBits,
			RawBitErrs: rawErrs,
			ByteErrs:   byteErrs(recovered),
		}
		if bytes.Equal(recovered, eccPayload) && r.ByteErrs != 0 {
			r.ByteErrs = 0
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for li, npe := range levels {
		for si := range schemes {
			r := outs[li*nSchemes+si]
			if r == nil {
				continue
			}
			res.ByNPE[npe] = append(res.ByNPE[npe], *r)
			tbl.AddRow(levelName(npe), r.Scheme, r.Redundancy, r.RawBitErrs, r.ByteErrs)
		}
	}
	tbl.AddNote("SECDED corrects one bad cell per 16-bit word: cheap at low raw BER, outclassed by replication when several cells per word fail")
	res.Artifact = &Artifact{
		ID:     "ecc",
		Title:  "Error correction as an alternative to replication",
		Tables: []report.Table{tbl},
	}
	return res, nil
}

// RunECCStudy adapts ECCStudy to the registry.
func RunECCStudy(cfg Config) (*Artifact, error) {
	res, err := ECCStudy(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
