package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestFig6Golden pins the fully deterministic Fig. 6 artifact byte-for-
// byte; regenerate with `go test -run TestFig6Golden -update-golden`.
func TestFig6Golden(t *testing.T) {
	a, err := Fig6(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := a.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "fig6.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("fig6 output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
