package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("fig10", RunFig10) }

// Fig10Result is the structured outcome of the Fig. 10 reproduction.
type Fig10Result struct {
	Artifact *Artifact
	// ReplicaErrors is the per-replica bit error count on the 30-bit
	// vector.
	ReplicaErrors []int
	// MajorityErrors is the residual error count after the 7-way vote
	// (paper: 0).
	MajorityErrors int
	// BadAsGood and GoodAsBad split the raw replica errors by direction
	// (the paper observes bad->good dominates).
	BadAsGood, GoodAsBad int
}

// Fig10 reproduces the replica-voting demonstration: a 30-bit vector
// imprinted 7 times at 50 K cycles, extracted with one partial erase,
// recovered error-free by majority voting (paper Fig. 10).
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	const (
		stress   = 50_000
		replicas = 7
		bits     = 30 // the paper displays a 30-bit window
	)
	// A 30-bit vector packed into two 16-bit words (bit 30,31 forced 1 =
	// good, outside the displayed window).
	payload := []uint64{0x5A3C, 0xC5A3 | 0xC000}
	// The paper uses t_PEW = 28 µs on its silicon; our calibrated window
	// sits slightly lower. Use the better of the two for the headline
	// demonstration and report both.
	tpew := 26 * time.Microsecond
	// One device end to end (imprint → extract → vote) — serial by
	// nature; a single engine item keeps the Workers contract uniform.
	type fig10Out struct {
		views [][]uint64
		voted []uint64
	}
	outs, err := parallel.Map(cfg.pool(), 1, func(int) (fig10Out, error) {
		dev, err := cfg.newDevice(10)
		if err != nil {
			return fig10Out{}, err
		}
		segWords := cfg.Part.Geometry.WordsPerSegment()
		img, err := core.Replicate(payload, replicas, segWords)
		if err != nil {
			return fig10Out{}, err
		}
		if err := core.ImprintSegment(dev, 0, img, core.ImprintOptions{NPE: stress, Accelerated: true}); err != nil {
			return fig10Out{}, err
		}
		extracted, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: tpew})
		if err != nil {
			return fig10Out{}, err
		}
		views, err := core.ReplicaViews(extracted, len(payload), replicas)
		if err != nil {
			return fig10Out{}, err
		}
		voted, err := core.MajorityDecode(extracted, len(payload), replicas, 16)
		if err != nil {
			return fig10Out{}, err
		}
		return fig10Out{views: views, voted: voted}, nil
	})
	if err != nil {
		return nil, err
	}
	views, voted := outs[0].views, outs[0].voted

	res := &Fig10Result{}
	bitOf := func(words []uint64, i int) byte {
		w, b := i/16, i%16
		if words[w]&(1<<uint(b)) != 0 {
			return '1'
		}
		return '0'
	}
	rowString := func(words []uint64) string {
		out := make([]byte, bits)
		for i := 0; i < bits; i++ {
			out[i] = bitOf(words, i)
		}
		return string(out)
	}
	tbl := report.Table{
		Title:   "Fig. 10 — extracting a 30-bit watermark from 7 replicas (50 K cycles)",
		Columns: []string{"row", "bits 1..30", "bit errors"},
	}
	tbl.AddRow("imprinted", rowString(payload), "-")
	for r, view := range views {
		errs := 0
		for i := 0; i < bits; i++ {
			got, want := bitOf(view, i), bitOf(payload, i)
			if got != want {
				errs++
				if want == '0' {
					res.BadAsGood++
				} else {
					res.GoodAsBad++
				}
			}
		}
		res.ReplicaErrors = append(res.ReplicaErrors, errs)
		tbl.AddRow("replica "+itoa(r+1), rowString(view), errs)
	}
	for i := 0; i < bits; i++ {
		if bitOf(voted, i) != bitOf(payload, i) {
			res.MajorityErrors++
		}
	}
	tbl.AddRow("majority", rowString(voted), res.MajorityErrors)
	tbl.AddNote("t_PEW = %.0f µs (paper used 28 µs on its parts); paper recovers BER = 0", us(tpew))
	tbl.AddNote("error direction: %d bad-as-good vs %d good-as-bad (paper: bad-as-good dominates)",
		res.BadAsGood, res.GoodAsBad)
	res.Artifact = &Artifact{
		ID:     "fig10",
		Title:  "Majority voting over replicated watermarks",
		Tables: []report.Table{tbl},
	}
	return res, nil
}

// RunFig10 adapts Fig10 to the registry.
func RunFig10(cfg Config) (*Artifact, error) {
	res, err := Fig10(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
