package experiment

import "testing"

func TestFamilyWindowDoesNotTransfer(t *testing.T) {
	res, err := Family(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.OwnBER > 12 {
		t.Errorf("own-window BER = %.2f%%, should be a usable operating point", res.OwnBER)
	}
	if res.CrossBER < res.OwnBER*2 {
		t.Errorf("cross-family window should be far worse: cross %.2f%% vs own %.2f%%",
			res.CrossBER, res.OwnBER)
	}
	if res.AltWindow <= 28000 { // ns
		t.Errorf("ALT-NOR window = %v, should sit well above the MSP430 window", res.AltWindow)
	}
}
