package experiment

import (
	"fmt"
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("fig11", RunFig11) }

// Fig11Result is the structured outcome of the Fig. 11 reproduction.
type Fig11Result struct {
	Artifact *Artifact
	// MinBER maps (N_PE, replicas) to the minimum BER (%) over the
	// t_PE sweep.
	MinBER map[int]map[int]float64
	// WindowWidth maps (N_PE, replicas) to the width of the t_PE span
	// with BER under a 5% budget, showing the paper's observation that
	// replication widens the usable window.
	WindowWidth map[int]map[int]time.Duration
}

// paperFig11MinBER40K holds the paper's reported 40 K minimums (%).
var paperFig11MinBER40K = map[int]float64{3: 5.2, 5: 2.4, 7: 0.96}

// Fig11 reproduces the replication study: BER vs t_PE for 3/5/7-way
// replicated watermarks at 40/50/60/70 K imprint cycles (paper Fig. 11).
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	levels := []int{40_000, 50_000, 60_000, 70_000}
	replicaCounts := []int{3, 5, 7}
	lo, hi := 20*time.Microsecond, 36*time.Microsecond
	step := 500 * time.Nanosecond
	if cfg.Fast {
		levels = []int{40_000, 70_000}
		replicaCounts = []int{3, 7}
		step = time.Microsecond
	}
	segWords := cfg.Part.Geometry.WordsPerSegment()
	bits := cfg.Part.Geometry.WordBits()

	res := &Fig11Result{
		MinBER:      map[int]map[int]float64{},
		WindowWidth: map[int]map[int]time.Duration{},
	}
	tbl := report.Table{
		Title:   "Fig. 11 — minimum BER with replicated watermarks",
		Columns: []string{"N_PE", "replicas", "min BER (%)", "at t_PE (µs)", "window width (µs)", "paper (%)"},
	}
	// The (N_PE × replica count) grid is flattened onto the engine — one
	// independent device per cell — and the table rows, plot series and
	// result maps are assembled serially in the original nested order.
	type cellOut struct {
		series report.Series
		minBER float64
		bestT  time.Duration
		width  time.Duration
	}
	nReps := len(replicaCounts)
	outs, err := parallel.Map(cfg.pool(), len(levels)*nReps, func(idx int) (cellOut, error) {
		npe, reps := levels[idx/nReps], replicaCounts[idx%nReps]
		// Payload sized so `reps` replicas fill the segment.
		payloadWords := segWords / reps
		payload := core.ReferenceWatermark(payloadWords)
		img, err := core.Replicate(payload, reps, segWords)
		if err != nil {
			return cellOut{}, err
		}
		dev, err := cfg.newDevice(uint64(npe)*31 + uint64(reps))
		if err != nil {
			return cellOut{}, err
		}
		if err := core.ImprintSegment(dev, 0, img, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return cellOut{}, err
		}
		out := cellOut{series: report.Series{Name: itoa(reps) + " replicas"}, minBER: 101.0}
		type pt struct {
			t   time.Duration
			ber float64
		}
		var pts []pt
		for t := lo; t <= hi; t += step {
			extracted, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: t})
			if err != nil {
				return cellOut{}, err
			}
			voted, err := core.MajorityDecode(extracted, payloadWords, reps, bits)
			if err != nil {
				return cellOut{}, err
			}
			ber := 100 * core.BER(voted, payload, bits)
			pts = append(pts, pt{t, ber})
			out.series.X = append(out.series.X, us(t))
			out.series.Y = append(out.series.Y, ber)
			if ber < out.minBER {
				out.minBER, out.bestT = ber, t
			}
		}
		// Window: span of usable operating points (BER under an
		// absolute 5% budget). A fixed budget makes widths
		// comparable across replica counts — the paper's point is
		// that replication widens this region.
		const limit = 5.0
		var winLo, winHi time.Duration
		for _, p := range pts {
			if p.ber <= limit {
				if winLo == 0 {
					winLo = p.t
				}
				winHi = p.t
			}
		}
		out.width = winHi - winLo
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var plots []report.Plot
	for li, npe := range levels {
		res.MinBER[npe] = map[int]float64{}
		res.WindowWidth[npe] = map[int]time.Duration{}
		plot := report.Plot{
			Title:  "Fig. 11 — BER vs t_PE at " + levelName(npe),
			XLabel: "t_PE (µs)",
			YLabel: "BER (%)",
		}
		for ri, reps := range replicaCounts {
			out := outs[li*nReps+ri]
			res.MinBER[npe][reps] = out.minBER
			res.WindowWidth[npe][reps] = out.width
			paper := "-"
			if npe == 40_000 {
				if p, ok := paperFig11MinBER40K[reps]; ok {
					paper = fmt.Sprintf("%.2f", p)
				}
			}
			if npe == 70_000 && reps == 3 {
				paper = "0"
			}
			tbl.AddRow(levelName(npe), reps, out.minBER, us(out.bestT), us(out.width), paper)
			plot.Series = append(plot.Series, out.series)
		}
		plots = append(plots, plot)
	}
	tbl.AddNote("paper: 40 K minimums 5.2 / 2.4 / 0.96 %% for 3/5/7 replicas; 70 K fully recovered with 3 replicas")
	tbl.AddNote("window = t_PE span with BER under an absolute 5%% budget")
	res.Artifact = &Artifact{
		ID:     "fig11",
		Title:  "Impact of watermark replication on bit error rates",
		Tables: []report.Table{tbl},
		Plots:  plots,
	}
	return res, nil
}

// RunFig11 adapts Fig11 to the registry.
func RunFig11(cfg Config) (*Artifact, error) {
	res, err := Fig11(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
