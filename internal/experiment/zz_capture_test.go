package experiment

import (
	"os"
	"testing"
)

func TestZZCaptureBaseline(t *testing.T) {
	out := os.Getenv("CAPTURE_OUT")
	if out == "" {
		t.Skip("no CAPTURE_OUT")
	}
	got := renderAll(t, 1)
	if err := os.WriteFile(out, []byte(got), 0o644); err != nil {
		t.Fatal(err)
	}
}
