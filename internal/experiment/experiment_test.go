package experiment

import (
	"strings"
	"testing"
	"time"
)

func fastCfg() Config { return Config{Fast: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"consistency", "ecc", "endurance", "family", "fig10", "fig11", "fig4", "fig5", "fig6", "fig9", "nand", "retention", "roc", "supplychain", "temperature", "timing"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", fastCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Monotone all-erased times with stress.
	if !(res.AllErased[0] < res.AllErased[20_000] && res.AllErased[20_000] < res.AllErased[50_000]) {
		t.Errorf("all-erased times not monotone: %v", res.AllErased)
	}
	// Fresh completes within ~40µs; stressed takes much longer.
	if res.AllErased[0] > 40*time.Microsecond {
		t.Errorf("fresh all-erased at %v", res.AllErased[0])
	}
	if res.AllErased[50_000] < 100*time.Microsecond {
		t.Errorf("50K all-erased at %v, want >100µs", res.AllErased[50_000])
	}
	// Transition is gradual for stressed, abrupt for fresh: compare the
	// t_PE span between 90% and 10% programmed.
	span := func(level int) time.Duration {
		points := res.Curves[level]
		cells := points[0].Cells0
		var t90, t10 time.Duration
		for _, p := range points {
			if t90 == 0 && p.Cells0 <= cells*9/10 {
				t90 = p.TPE
			}
			if t10 == 0 && p.Cells0 <= cells/10 {
				t10 = p.TPE
			}
		}
		return t10 - t90
	}
	if span(50_000) <= span(0) {
		t.Errorf("stressed transition (%v) should be wider than fresh (%v)", span(50_000), span(0))
	}
	if res.Artifact == nil || len(res.Artifact.Tables) == 0 || len(res.Artifact.Plots) == 0 {
		t.Fatal("artifact incomplete")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinguishable < res.Cells*3/4 {
		t.Errorf("distinguishable = %d of %d, want > 75%% (paper: 93.6%%)", res.Distinguishable, res.Cells)
	}
	if res.BestTPEW < 18*time.Microsecond || res.BestTPEW > 32*time.Microsecond {
		t.Errorf("best t_PEW = %v outside plausible window", res.BestTPEW)
	}
}

func TestFig6Trace(t *testing.T) {
	a, err := Fig6(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := a.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"0101010001000011", "1111111111111111", "BGBGBGBBBGBBBBGG"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 output missing %q", want)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// BER decreases with imprint count.
	if !(res.MinBER[20_000] > res.MinBER[60_000]) {
		t.Errorf("BER not decreasing: %v", res.MinBER)
	}
	// The 0K line has no usable minimum between the two bit-share bounds:
	// its minimum is the smaller bit-share (the ASCII one-bit fraction,
	// >30%), far above any imprinted line.
	if res.MinBER[0] < 25 {
		t.Errorf("0K min BER = %.1f%%, should be bounded by bit shares", res.MinBER[0])
	}
	// Optimal window shifts right (or stays) with stress.
	if res.BestTPEW[60_000] < res.BestTPEW[20_000] {
		t.Errorf("optimal t_PE moved left: %v", res.BestTPEW)
	}
	// Magnitudes in the paper's band (2x).
	if res.MinBER[20_000] < 8 || res.MinBER[20_000] > 40 {
		t.Errorf("20K min BER = %.1f%%, paper 19.9%%", res.MinBER[20_000])
	}
	if res.MinBER[60_000] < 2 || res.MinBER[60_000] > 16 {
		t.Errorf("60K min BER = %.1f%%, paper 7.6%%", res.MinBER[60_000])
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReplicaErrors) != 7 {
		t.Fatalf("replica count = %d", len(res.ReplicaErrors))
	}
	worst := 0
	for _, e := range res.ReplicaErrors {
		if e > worst {
			worst = e
		}
	}
	if res.MajorityErrors > 1 {
		t.Errorf("majority errors = %d, want <= 1 (paper: 0)", res.MajorityErrors)
	}
	if worst > 0 && res.MajorityErrors >= worst {
		t.Errorf("majority (%d) did not beat worst replica (%d)", res.MajorityErrors, worst)
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// More replicas, lower BER at 40K.
	if res.MinBER[40_000][7] > res.MinBER[40_000][3] {
		t.Errorf("7 replicas worse than 3 at 40K: %v", res.MinBER[40_000])
	}
	// 70K with 3 replicas approaches zero (paper: exactly 0; the fast
	// grid may sit slightly off the optimum).
	if res.MinBER[70_000][3] > 1.5 {
		t.Errorf("70K 3-replica min BER = %.2f%%, want <= 1.5%%", res.MinBER[70_000][3])
	}
	// Replication widens the usable window.
	if res.WindowWidth[40_000][7] < res.WindowWidth[40_000][3] {
		t.Errorf("window did not widen with replicas: %v", res.WindowWidth[40_000])
	}
}

func TestTimingMatchesPaperBand(t *testing.T) {
	res, err := Timing(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	base := res.ImprintBaseline[40_000]
	acc := res.ImprintAccelerated[40_000]
	if base < 1300*time.Second || base > 1450*time.Second {
		t.Errorf("40K baseline imprint = %v, paper 1380 s", base)
	}
	if acc < 300*time.Second || acc > 500*time.Second {
		t.Errorf("40K accelerated imprint = %v, paper 387 s", acc)
	}
	speedup := float64(base) / float64(acc)
	if speedup < 2.8 || speedup > 4.5 {
		t.Errorf("speedup = %.2fx, paper ~3.5x", speedup)
	}
	if res.Extract < 120*time.Millisecond || res.Extract > 230*time.Millisecond {
		t.Errorf("extract = %v, paper ~170 ms", res.Extract)
	}
	if res.OverheadSegments != 1 {
		t.Errorf("overhead segments = %d", res.OverheadSegments)
	}
}

func TestSupplyChainSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment is slow")
	}
	res, err := SupplyChain(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The current practice accepts forgeries; Flashmark does not (except
	// the replay-imprint residual).
	if res.MetadataFalseAccepts == 0 {
		t.Error("metadata check should be fooled by forgeries")
	}
	if res.EraseTimingFalseAccepts == 0 {
		t.Error("usage-only detector should miss identity counterfeits")
	}
	if res.FlashmarkFalseAccepts > 1 {
		t.Errorf("Flashmark false accepts = %d, want <= 1 (replay residual)", res.FlashmarkFalseAccepts)
	}
	if res.FlashmarkFalseRejects != 0 {
		t.Errorf("Flashmark false rejects = %d\n%s", res.FlashmarkFalseRejects, res.Matrix)
	}
}

func TestConsistencyAcrossDice(t *testing.T) {
	res, err := Consistency(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MinBERs) != 3 {
		t.Fatalf("dice = %d", len(res.MinBERs))
	}
	// Family-wide consistency: per-die minima agree within a few points
	// and optima within a couple of µs.
	if res.Summary.StdDev > 3 {
		t.Errorf("min-BER spread too wide: %+v", res.Summary)
	}
	var loT, hiT = res.BestTPEWs[0], res.BestTPEWs[0]
	for _, t2 := range res.BestTPEWs {
		if t2 < loT {
			loT = t2
		}
		if t2 > hiT {
			hiT = t2
		}
	}
	if hiT-loT > 4*time.Microsecond {
		t.Errorf("optimal t_PEW spread = %v, want a usable family window", hiT-loT)
	}
}

func TestArtifactsRender(t *testing.T) {
	for _, id := range []string{"fig6", "timing"} {
		a, err := Run(id, fastCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var b strings.Builder
		if err := a.WriteText(&b); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
		if !strings.Contains(b.String(), a.Title) {
			t.Errorf("%s output missing title", id)
		}
	}
}

func TestSupplyChainAuditEpilogue(t *testing.T) {
	if testing.Short() {
		t.Skip("population experiment is slow")
	}
	res, err := SupplyChain(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuditCaughtClone {
		t.Error("the batch audit should refuse the replay clone")
	}
}
