package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("fig9", RunFig9) }

// Fig9Result is the structured outcome of the Fig. 9 reproduction.
type Fig9Result struct {
	Artifact *Artifact
	// MinBER maps N_PE to the minimum single-read extraction BER (%)
	// across the t_PE sweep.
	MinBER map[int]float64
	// BestTPEW maps N_PE to the t_PE achieving the minimum.
	BestTPEW map[int]time.Duration
}

// paperFig9MinBER holds the paper's reported minimum bit error rates (%).
var paperFig9MinBER = map[int]float64{
	20_000: 19.9, 40_000: 11.8, 60_000: 7.6, 80_000: 2.3,
}

// Fig9 reproduces the single-read watermark extraction error study: the
// bit error rate of a 512-byte ASCII watermark as a function of the
// partial erase time, per imprint stress count (paper Fig. 9).
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	levels := []int{0, 20_000, 40_000, 60_000, 80_000, 100_000}
	lo, hi := 16*time.Microsecond, 45*time.Microsecond
	step := 250 * time.Nanosecond
	if cfg.Fast {
		levels = []int{0, 20_000, 60_000}
		step = 2 * time.Microsecond
	}
	wm := core.ReferenceWatermark(cfg.Part.Geometry.WordsPerSegment())
	bits := cfg.Part.Geometry.WordBits()

	res := &Fig9Result{MinBER: map[int]float64{}, BestTPEW: map[int]time.Duration{}}
	plot := report.Plot{
		Title:  "Fig. 9 — single-read extraction BER vs t_PE",
		XLabel: "t_PE (µs)",
		YLabel: "bit error rate (%)",
	}
	tbl := report.Table{
		Title:   "Fig. 9 — minimum single-read extraction BER per imprint count",
		Columns: []string{"N_PE", "min BER (%)", "at t_PE (µs)", "paper min BER (%)"},
	}
	// One device per stress level; each item imprints and runs the full
	// extraction sweep, and the indexed results are folded into the plot
	// and table serially in level order.
	type levelOut struct {
		series report.Series
		minBER float64
		bestT  time.Duration
	}
	outs, err := parallel.Map(cfg.pool(), len(levels), func(i int) (levelOut, error) {
		npe := levels[i]
		dev, err := cfg.newDevice(uint64(npe) + 9)
		if err != nil {
			return levelOut{}, err
		}
		if npe > 0 {
			if err := core.ImprintSegment(dev, 0, wm, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
				return levelOut{}, err
			}
		}
		out := levelOut{series: report.Series{Name: levelName(npe)}, minBER: 101.0}
		for t := lo; t <= hi; t += step {
			got, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: t})
			if err != nil {
				return levelOut{}, err
			}
			ber := 100 * core.BER(got, wm, bits)
			out.series.X = append(out.series.X, us(t))
			out.series.Y = append(out.series.Y, ber)
			if ber < out.minBER {
				out.minBER, out.bestT = ber, t
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, npe := range levels {
		minBER, bestT := outs[i].minBER, outs[i].bestT
		plot.Series = append(plot.Series, outs[i].series)
		res.MinBER[npe] = minBER
		res.BestTPEW[npe] = bestT
		if paper, ok := paperFig9MinBER[npe]; ok {
			tbl.AddRow(levelName(npe), minBER, us(bestT), paper)
		} else {
			tbl.AddRow(levelName(npe), minBER, us(bestT), "-")
		}
	}
	tbl.AddNote("watermark: repeating upper-case ASCII text over the whole 512-byte segment")
	tbl.AddNote("0 K line bounds: BER equals the watermark's one-bit share at small t_PE and its zero-bit share at large t_PE")
	res.Artifact = &Artifact{
		ID:     "fig9",
		Title:  "Watermark extraction bit error rate vs partial erase time",
		Tables: []report.Table{tbl},
		Plots:  []report.Plot{plot},
	}
	return res, nil
}

// RunFig9 adapts Fig9 to the registry.
func RunFig9(cfg Config) (*Artifact, error) {
	res, err := Fig9(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
