package experiment

import "testing"

func TestROCSeparation(t *testing.T) {
	res, err := ROC(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FreshFractions) == 0 || len(res.RecycledFractions[10_000]) == 0 {
		t.Fatal("populations missing")
	}
	for _, f := range res.FreshFractions {
		if f > 0.04 {
			t.Errorf("fresh chip fraction %.3f above the default threshold", f)
		}
	}
	for _, f := range res.RecycledFractions[10_000] {
		if f < 0.04 {
			t.Errorf("10K-recycled fraction %.3f below the default threshold", f)
		}
	}
	// The lightest first life (2K) is a documented blind spot: its wear
	// signature is inside the fresh manufacturing spread. Just confirm
	// the study measured it.
	if len(res.RecycledFractions[2_000]) == 0 {
		t.Fatal("2K population missing")
	}
}
