package experiment

import (
	"sort"
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func init() { register("roc", RunROC) }

// ROCResult is the structured outcome of the recycling-screen threshold
// study: how the wear-screen decision threshold trades missed recycled
// chips against false alarms on fresh ones, across first-life intensities.
type ROCResult struct {
	Artifact *Artifact
	// FreshFractions holds the programmed-cell fractions measured on
	// fresh chips' data segments.
	FreshFractions []float64
	// RecycledFractions maps first-life P/E cycles to the measured
	// fractions on recycled chips.
	RecycledFractions map[int][]float64
	// Separation is the gap between the worst fresh fraction and the
	// best detectable recycled fraction at the lightest first life.
	Separation float64
}

// ROC measures the wear screen's operating characteristic: the
// programmed-cell fraction distributions of fresh vs recycled data
// segments, and the detection/false-alarm rates as the threshold sweeps.
func ROC(cfg Config) (*ROCResult, error) {
	cfg = cfg.withDefaults()
	freshChips := 6
	recycledPerLevel := 3
	lives := []int{2_000, 5_000, 10_000, 20_000}
	if cfg.Fast {
		freshChips = 3
		recycledPerLevel = 2
		lives = []int{2_000, 10_000}
	}
	const tpew = 25 * time.Microsecond
	factory := counterfeit.FactoryConfig{
		Fab:   cfg.fab(cfg.Part),
		Codec: wmcode.Codec{Key: []byte("k")},
	}
	cells := cfg.Part.Geometry.CellsPerSegment()
	segAddr := cfg.Part.Geometry.SegmentBytes // first data segment

	res := &ROCResult{RecycledFractions: map[int][]float64{}}
	measure := func(class counterfeit.ChipClass, fieldWear int, seed uint64) (float64, error) {
		f := factory
		f.FieldWearCycles = fieldWear
		dev, err := counterfeit.Fabricate(class, f, seed, 1)
		if err != nil {
			return 0, err
		}
		programmed, err := core.DetectStress(dev, segAddr, tpew, 3)
		if err != nil {
			return 0, err
		}
		return float64(programmed) / float64(cells), nil
	}

	// Every chip is an independent fabricate-and-probe: flatten fresh and
	// recycled chips into one job list and fan it out; fractions land by
	// index so the population ordering (and output) never changes.
	type chipJob struct {
		class counterfeit.ChipClass
		wear  int
		seed  uint64
	}
	var chips []chipJob
	for i := 0; i < freshChips; i++ {
		chips = append(chips, chipJob{counterfeit.ClassGenuineAccept, 10_000, 0xF0C0 + uint64(i)})
	}
	for _, life := range lives {
		for i := 0; i < recycledPerLevel; i++ {
			chips = append(chips, chipJob{counterfeit.ClassRecycled, life, 0xF1C0 + uint64(life) + uint64(i)})
		}
	}
	fracs, err := parallel.Map(cfg.pool(), len(chips), func(i int) (float64, error) {
		return measure(chips[i].class, chips[i].wear, chips[i].seed)
	})
	if err != nil {
		return nil, err
	}
	res.FreshFractions = fracs[:freshChips]
	for li, life := range lives {
		start := freshChips + li*recycledPerLevel
		res.RecycledFractions[life] = fracs[start : start+recycledPerLevel]
	}

	dist := report.Table{
		Title:   "EXT-ROC — programmed-cell fraction at t_PEW: fresh vs recycled data segments",
		Columns: []string{"population", "fractions (%)"},
	}
	dist.AddRow("fresh", fracList(res.FreshFractions))
	for _, life := range lives {
		dist.AddRow("recycled "+levelName(life)+" first life", fracList(res.RecycledFractions[life]))
	}

	// Threshold sweep: detection per first-life level and fresh false
	// alarms, computed offline from the measured fractions.
	roc := report.Table{
		Title:   "EXT-ROC — wear-screen threshold sweep",
		Columns: append([]string{"threshold (%)", "fresh false alarms"}, rocCols(lives)...),
	}
	for _, thr := range []float64{0.01, 0.02, 0.04, 0.08, 0.15, 0.30} {
		row := []any{100 * thr, countAbove(res.FreshFractions, thr)}
		for _, life := range lives {
			row = append(row, countAbove(res.RecycledFractions[life], thr))
		}
		roc.AddRow(row...)
	}
	roc.AddNote("default threshold 4%%: zero fresh false alarms; every first life >= 10K cycles is caught")
	roc.AddNote("blind spot: first lives of <= 5K cycles sit near the fresh manufacturing spread; catching them requires a ~1.3%% threshold and accepting fresh false alarms")

	// Separation: worst fresh vs best lightest-life recycled.
	fresh := append([]float64(nil), res.FreshFractions...)
	sort.Float64s(fresh)
	lightest := append([]float64(nil), res.RecycledFractions[lives[0]]...)
	sort.Float64s(lightest)
	if len(fresh) > 0 && len(lightest) > 0 {
		res.Separation = lightest[0] - fresh[len(fresh)-1]
	}
	dist.AddNote("separation between worst fresh and lightest recycled: %.3f", res.Separation)

	res.Artifact = &Artifact{
		ID:     "roc",
		Title:  "Recycling screen operating characteristic",
		Tables: []report.Table{dist, roc},
	}
	return res, nil
}

func fracList(fs []float64) string {
	out := ""
	for i, f := range fs {
		if i > 0 {
			out += " "
		}
		out += itoa(int(f*1000 + 0.5))
	}
	return out + " (per mille)"
}

func rocCols(lives []int) []string {
	out := make([]string, len(lives))
	for i, l := range lives {
		out[i] = "caught @" + levelName(l)
	}
	return out
}

func countAbove(fs []float64, thr float64) int {
	n := 0
	for _, f := range fs {
		if f > thr {
			n++
		}
	}
	return n
}

// RunROC adapts ROC to the registry.
func RunROC(cfg Config) (*Artifact, error) {
	res, err := ROC(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
