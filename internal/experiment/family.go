package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("family", RunFamily) }

// FamilyResult is the structured outcome of the per-family calibration
// study (paper §IV: the partial erase time window "is determined by the
// manufacturer ... for each family of devices and can be publicly
// communicated to system integrators").
type FamilyResult struct {
	Artifact *Artifact
	// CrossBER is the BER when the MSP430 family's window is applied to
	// the ALT-NOR family (wrong window).
	CrossBER float64
	// OwnBER is the BER at ALT-NOR's own calibrated window.
	OwnBER float64
	// AltWindow is the ALT-NOR family's calibrated optimum.
	AltWindow time.Duration
}

// Family imprints the same watermark on two device families and shows
// that the extraction window does not transfer: each family needs its
// own published calibration.
func Family(cfg Config) (*FamilyResult, error) {
	cfg = cfg.withDefaults()
	const npe = 80_000
	msp430Window := 25 * time.Microsecond

	alt := mcu.PartAltNOR()
	wm := core.ReferenceWatermark(alt.Geometry.WordsPerSegment())
	bits := alt.Geometry.WordBits()

	res := &FamilyResult{}
	// Two independent chains fan out: the device-under-test (imprint +
	// wrong-window extraction) and the manufacturer's calibration sweep
	// (its own fresh devices). The own-window extraction reuses the
	// device under test AND the calibration result, so it runs serially
	// after the join.
	var dev device.Device
	var cal core.Calibration
	err := parallel.ForEach(cfg.pool(), 2, func(i int) error {
		if i == 0 {
			d, err := cfg.open(alt, cfg.Seed^0xFA11)
			if err != nil {
				return err
			}
			if err := core.ImprintSegment(d, 0, wm, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
				return err
			}
			// Wrong window: the MSP430 family's published t_PEW.
			got, err := core.ExtractSegment(d, 0, core.ExtractOptions{TPEW: msp430Window})
			if err != nil {
				return err
			}
			dev = d
			res.CrossBER = 100 * core.BER(got, wm, bits)
			return nil
		}
		// Right window: calibrate ALT-NOR as its manufacturer would.
		seeds := []uint64{0xA17A, 0xA17B}
		if cfg.Fast {
			seeds = seeds[:1]
		}
		c, err := core.Calibrate(cfg.fab(alt), seeds, npe, core.CalibrateOptions{
			SweepLo:   28 * time.Microsecond,
			SweepHi:   48 * time.Microsecond,
			SweepStep: 500 * time.Nanosecond,
		})
		if err != nil {
			return err
		}
		cal = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.AltWindow = cal.Best
	got, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: cal.Best})
	if err != nil {
		return nil, err
	}
	res.OwnBER = 100 * core.BER(got, wm, bits)

	tbl := report.Table{
		Title:   "EXT-FAMILY — the extraction window is per device family (§IV)",
		Columns: []string{"window applied to ALT-NOR", "t_PEW (µs)", "BER (%)"},
	}
	tbl.AddRow("MSP430 family's published window", us(msp430Window), res.CrossBER)
	tbl.AddRow("ALT-NOR's own calibrated window", us(cal.Best), res.OwnBER)
	tbl.AddNote("ALT-NOR: slower process (fresh erase ~34 µs vs ~21.5 µs); same algorithms, different published constants")
	tbl.AddNote("ALT-NOR calibrated window: [%v, %v]", cal.WindowLo, cal.WindowHi)
	res.Artifact = &Artifact{
		ID:     "family",
		Title:  "Per-family calibration of the extraction window",
		Tables: []report.Table{tbl},
	}
	return res, nil
}

// RunFamily adapts Family to the registry.
func RunFamily(cfg Config) (*Artifact, error) {
	res, err := Family(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
