package experiment

import (
	"runtime"
	"strings"
	"testing"

	"github.com/flashmark/flashmark/internal/parallel"
)

// renderAll renders every registered experiment artifact with the given
// worker count into one string.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	cfg := fastCfg()
	cfg.Workers = workers
	var b strings.Builder
	for _, id := range IDs() {
		a, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("workers=%d %s: %v", workers, id, err)
		}
		if err := a.WriteText(&b); err != nil {
			t.Fatalf("workers=%d %s render: %v", workers, id, err)
		}
	}
	return b.String()
}

// TestArtifactsIdenticalAcrossWorkerCounts is the engine's headline
// guarantee: every experiment artifact is byte-identical for Workers =
// 1, 4 and GOMAXPROCS, because each device is an independent
// deterministic simulation and results assemble by index.
func TestArtifactsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full registry three times")
	}
	want := renderAll(t, 1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got := renderAll(t, w)
		if got == want {
			continue
		}
		// Locate the first divergent line for a readable failure.
		wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
		for i := range wl {
			if i >= len(gl) || wl[i] != gl[i] {
				t.Fatalf("workers=%d drifted from serial at line %d:\nserial:   %q\nparallel: %q", w, i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("workers=%d output differs in length: %d vs %d bytes", w, len(got), len(want))
	}
}

// TestSeedZeroSentinel pins the documented Config.Seed contract: zero is
// a sentinel selecting the fixed default (an explicit zero seed is
// unreachable by design).
func TestSeedZeroSentinel(t *testing.T) {
	got := Config{}.withDefaults()
	if got.Seed != 0xF1A5_0001 {
		t.Fatalf("zero seed resolved to %#x, want the fixed default 0xF1A5_0001", got.Seed)
	}
	kept := Config{Seed: 0xDEAD}.withDefaults()
	if kept.Seed != 0xDEAD {
		t.Fatalf("explicit seed overridden: %#x", kept.Seed)
	}
}

// TestDerivedSubSeedsDifferAcrossExperiments guards the sub-seed
// convention: the per-experiment sub values used across the registry
// must map the shared base seed onto distinct chip identities, or two
// experiments would silently characterize the same simulated die.
func TestDerivedSubSeedsDifferAcrossExperiments(t *testing.T) {
	cfg := Config{}.withDefaults()
	// The sub values in live use across the experiment files (fig4's
	// level+4, fig5's probes, fig6/fig9/fig10 offsets, timing's chains,
	// endurance, retention, temperature, consistency dice, ...).
	subs := map[string]uint64{
		"fig4 fresh":        0 + 4,
		"fig4 20K":          20_000 + 4,
		"fig5 fresh":        5,
		"fig5 worn":         55,
		"fig6":              6,
		"fig9 20K":          20_000 + 9,
		"fig10":             10,
		"fig11 40K/3":       40_000*31 + 3,
		"timing 40K":        40_000*7 + 1,
		"timing extract":    99,
		"endurance 60K":     60_000 + 0xE0D,
		"retention":         0x0E7,
		"temperature":       0x7E43,
		"consistency die 1": 0xC0,
		"ecc 40K none":      40_000*13 + 4,
		"nand NOR 40K":      40_000 + 0x4E,
	}
	seen := map[uint64]string{}
	for name, sub := range subs {
		s := parallel.SubSeed(cfg.Seed, sub)
		if prev, dup := seen[s]; dup {
			t.Errorf("experiments %q and %q derive the same chip seed %#x", prev, name, s)
		}
		seen[s] = name
	}
}
