package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("endurance", RunEndurance) }

// EnduranceResult is the structured outcome of the over-stress study:
// what imprinting beyond the datasheet endurance (the paper stops at
// 100 K, the endurance of its parts) buys and costs.
type EnduranceResult struct {
	Artifact *Artifact
	// MinBER maps N_PE (including beyond-endurance points) to the
	// minimum single-read extraction BER (%).
	MinBER map[int]float64
	// ReadInstability maps N_PE to the fraction of bits that disagreed
	// between two consecutive single-read extractions at the optimum —
	// a measure of how many cells sit metastably near the threshold.
	ReadInstability map[int]float64
	// ImprintTime maps N_PE to the accelerated imprint duration.
	ImprintTime map[int]time.Duration
}

// Endurance imprints at and beyond the endurance limit and measures the
// marginal BER improvement against the imprint time and read stability
// costs.
func Endurance(cfg Config) (*EnduranceResult, error) {
	cfg = cfg.withDefaults()
	levels := []int{60_000, 100_000, 150_000, 200_000}
	if cfg.Fast {
		levels = []int{60_000, 150_000}
	}
	lo, hi := 20*time.Microsecond, 36*time.Microsecond
	step := 500 * time.Nanosecond
	if cfg.Fast {
		step = time.Microsecond
	}
	wm := core.ReferenceWatermark(cfg.Part.Geometry.WordsPerSegment())
	bits := cfg.Part.Geometry.WordBits()
	endurance := int(cfg.Part.Params.EnduranceCycles)

	res := &EnduranceResult{
		MinBER:          map[int]float64{},
		ReadInstability: map[int]float64{},
		ImprintTime:     map[int]time.Duration{},
	}
	tbl := report.Table{
		Title:   "EXT-END — imprinting beyond the endurance limit",
		Columns: []string{"N_PE", "vs endurance", "min BER (%)", "read instability (%)", "imprint (s)"},
	}
	// One device per stress level; the imprint, sweep and instability
	// probes stay in their original per-device order inside each item.
	type levelOut struct {
		minBER      float64
		instability float64
		imprint     time.Duration
	}
	outs, err := parallel.Map(cfg.pool(), len(levels), func(i int) (levelOut, error) {
		npe := levels[i]
		dev, err := cfg.newDevice(uint64(npe) + 0xE0D)
		if err != nil {
			return levelOut{}, err
		}
		start := dev.Clock().Now()
		if err := core.ImprintSegment(dev, 0, wm, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return levelOut{}, err
		}
		out := levelOut{minBER: 101.0, imprint: dev.Clock().Now() - start}
		bestT := time.Duration(0)
		for t := lo; t <= hi; t += step {
			got, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: t})
			if err != nil {
				return levelOut{}, err
			}
			if ber := 100 * core.BER(got, wm, bits); ber < out.minBER {
				out.minBER, bestT = ber, t
			}
		}

		// Read instability: two consecutive extractions at the optimum
		// disagree on metastable (and, past endurance, noisy) bits.
		first, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: bestT})
		if err != nil {
			return levelOut{}, err
		}
		second, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: bestT})
		if err != nil {
			return levelOut{}, err
		}
		out.instability = 100 * core.BER(second, first, bits)
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, npe := range levels {
		res.ImprintTime[npe] = outs[i].imprint
		res.MinBER[npe] = outs[i].minBER
		res.ReadInstability[npe] = outs[i].instability
		rel := "within"
		if npe > endurance {
			rel = "beyond"
		}
		tbl.AddRow(levelName(npe), rel, outs[i].minBER, outs[i].instability, outs[i].imprint.Seconds())
	}
	tbl.AddNote("endurance budget of the part: %s cycles", levelName(endurance))
	tbl.AddNote("extraction keeps improving past endurance (better class separation outweighs the noisier worn cells) at linearly growing imprint cost")
	tbl.AddNote("the endurance budget protects user data, not the watermark: the dedicated segment can be sacrificed, which is why the paper runs right up to 100 K")
	res.Artifact = &Artifact{
		ID:     "endurance",
		Title:  "Diminishing returns beyond the endurance limit",
		Tables: []report.Table{tbl},
	}
	return res, nil
}

// RunEndurance adapts Endurance to the registry.
func RunEndurance(cfg Config) (*Artifact, error) {
	res, err := Endurance(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
