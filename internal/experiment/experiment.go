// Package experiment regenerates every table and figure of the paper's
// evaluation (§III and §V) against the simulated substrate. Each
// experiment is a pure function of its Config (deterministic seeds), and
// returns renderable tables/plots plus structured numbers that tests and
// benchmarks assert on. The per-experiment index lives in DESIGN.md;
// paper-vs-measured records live in EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

// Config parameterizes an experiment run.
type Config struct {
	// Part selects the simulated microcontroller (zero value selects the
	// compact FM-SIM16 part; all parts share physics and timing).
	Part mcu.Part
	// Seed is the base chip seed; distinct experiments derive their own
	// sub-seeds via parallel.SubSeed. Zero is a SENTINEL meaning "use the
	// fixed default 0xF1A5_0001" so published numbers are reproducible —
	// an explicit zero seed is therefore unreachable by design; callers
	// who need a different chip population must pass a nonzero seed.
	Seed uint64
	// Fast trades sweep resolution for speed (used by tests); the full
	// configuration reproduces the paper's resolution.
	Fast bool
	// Workers bounds how many independent devices an experiment simulates
	// concurrently; zero selects GOMAXPROCS and 1 forces the exact serial
	// execution. Artifacts are byte-identical for every worker count:
	// each device is its own deterministically seeded simulation and
	// results are assembled by index (see internal/parallel).
	Workers int
	// Physics optionally pins the physics implementation of every device
	// the experiment fabricates ("fast" or "reference"); the zero value
	// keeps the backend default (fast). Artifacts are byte-identical for
	// both values — the golden-equivalence suite renders the whole
	// registry under each and compares.
	Physics device.PhysicsPath
}

func (c Config) withDefaults() Config {
	if c.Part.Name == "" {
		c.Part = mcu.PartSmallSim()
	}
	if c.Seed == 0 {
		c.Seed = 0xF1A5_0001
	}
	return c
}

func (c Config) newDevice(sub uint64) (device.Device, error) {
	return c.open(c.Part, parallel.SubSeed(c.Seed, sub))
}

// open fabricates one part and applies the configured physics path.
func (c Config) open(part mcu.Part, seed uint64) (device.Device, error) {
	d, err := mcu.Open(part, seed)
	if err != nil {
		return nil, err
	}
	return c.applyPhysics(d)
}

// applyPhysics pins an already-fabricated device (any backend) to the
// configured physics path; the zero value leaves the device default.
func (c Config) applyPhysics(d device.Device) (device.Device, error) {
	if c.Physics == "" {
		return d, nil
	}
	if err := device.SetPhysicsPath(d, c.Physics); err != nil {
		return nil, err
	}
	return d, nil
}

// fab wraps the part's fabricator so every device it produces runs the
// configured physics path.
func (c Config) fab(part mcu.Part) device.Fab {
	f := mcu.Fab(part)
	if c.Physics == "" {
		return f
	}
	return device.WithPhysicsPath(f, c.Physics)
}

// pool returns the fan-out engine bounded by the Workers knob.
func (c Config) pool() parallel.Pool {
	return parallel.Pool{Workers: c.Workers}
}

// Artifact is the renderable output of one experiment.
type Artifact struct {
	ID     string // e.g. "fig4"
	Title  string
	Tables []report.Table
	Plots  []report.Plot
}

// WriteText renders every table and plot of the artifact.
func (a *Artifact) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "==== %s: %s ====\n\n", a.ID, a.Title); err != nil {
		return err
	}
	for i := range a.Tables {
		if err := a.Tables[i].WriteText(w); err != nil {
			return err
		}
	}
	for i := range a.Plots {
		if err := a.Plots[i].WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// Runner executes one experiment.
type Runner func(Config) (*Artifact, error)

// registry of experiments by id, populated by each experiment file.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[id] = r
}

// IDs returns the registered experiment ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Artifact, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// us formats a duration in microseconds for tables.
func us(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// usDur converts microseconds to a duration.
func usDur(v float64) time.Duration {
	return time.Duration(v * float64(time.Microsecond))
}
