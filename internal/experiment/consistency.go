package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/mathx"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("consistency", RunConsistency) }

// ConsistencyResult is the structured outcome of the chip-consistency
// study (paper §V: "Multiple chip samples are used and we find that flash
// memories within the same family show consistent behavior when
// subjected to proposed techniques").
type ConsistencyResult struct {
	Artifact *Artifact
	// MinBERs holds the per-chip minimum single-read BER (%) at the
	// reference imprint count.
	MinBERs []float64
	// BestTPEWs holds the per-chip optimal extraction times.
	BestTPEWs []time.Duration
	// Summary summarizes the per-chip minima.
	Summary mathx.Summary
}

// Consistency imprints the reference watermark at 60 K cycles on several
// distinct dice and compares their extraction BER curves: the family-wide
// published t_PEW window only works if chips behave consistently.
func Consistency(cfg Config) (*ConsistencyResult, error) {
	cfg = cfg.withDefaults()
	chips := 6
	step := 500 * time.Nanosecond
	if cfg.Fast {
		chips = 3
		step = time.Microsecond
	}
	const npe = 60_000
	lo, hi := 20*time.Microsecond, 30*time.Microsecond
	wm := core.ReferenceWatermark(cfg.Part.Geometry.WordsPerSegment())
	bits := cfg.Part.Geometry.WordBits()

	res := &ConsistencyResult{}
	tbl := report.Table{
		Title:   "§V — chip-to-chip consistency: per-die minimum BER at 60 K",
		Columns: []string{"die", "min BER (%)", "optimal t_PEW (µs)", "BER at family t_PEW=24.5µs (%)"},
	}
	plot := report.Plot{
		Title:  "§V — BER vs t_PE across dice (60 K imprint)",
		XLabel: "t_PE (µs)",
		YLabel: "BER (%)",
	}
	familyTPEW := 24*time.Microsecond + 500*time.Nanosecond
	// One die per item — the very workload the paper's multi-chip claim
	// is about; sweeps run concurrently, one goroutine per die.
	type dieOut struct {
		series   report.Series
		minBER   float64
		bestT    time.Duration
		atFamily float64
	}
	outs, err := parallel.Map(cfg.pool(), chips, func(chip int) (dieOut, error) {
		dev, err := cfg.newDevice(0xC0 + uint64(chip)*1117)
		if err != nil {
			return dieOut{}, err
		}
		if err := core.ImprintSegment(dev, 0, wm, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return dieOut{}, err
		}
		out := dieOut{series: report.Series{Name: "die " + itoa(chip+1)}, minBER: 101.0, atFamily: -1.0}
		for t := lo; t <= hi; t += step {
			got, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: t})
			if err != nil {
				return dieOut{}, err
			}
			ber := 100 * core.BER(got, wm, bits)
			out.series.X = append(out.series.X, us(t))
			out.series.Y = append(out.series.Y, ber)
			if ber < out.minBER {
				out.minBER, out.bestT = ber, t
			}
			if t == familyTPEW {
				out.atFamily = ber
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for chip, out := range outs {
		res.MinBERs = append(res.MinBERs, out.minBER)
		res.BestTPEWs = append(res.BestTPEWs, out.bestT)
		tbl.AddRow("die "+itoa(chip+1), out.minBER, us(out.bestT), out.atFamily)
		plot.Series = append(plot.Series, out.series)
	}
	res.Summary = mathx.Summarize(res.MinBERs)
	tbl.AddNote("min BER across dice: mean %.2f%%, stddev %.2f%%, range [%.2f%%, %.2f%%]",
		res.Summary.Mean, res.Summary.StdDev, res.Summary.Min, res.Summary.Max)
	tbl.AddNote("paper: chips within a family show consistent behavior, enabling a published family-wide window")
	res.Artifact = &Artifact{
		ID:     "consistency",
		Title:  "Chip-to-chip consistency of the extraction operating point",
		Tables: []report.Table{tbl},
		Plots:  []report.Plot{plot},
	}
	return res, nil
}

// RunConsistency adapts Consistency to the registry.
func RunConsistency(cfg Config) (*Artifact, error) {
	res, err := Consistency(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
