package experiment

import (
	"fmt"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("fig6", RunFig6) }

// Fig6 regenerates the imprint illustration: the digital state of one
// flash word over repeated erase (E) / program (P) cycles while
// imprinting the watermark "TC" = 0x5443, and the resulting good/bad
// physical pattern (paper Fig. 6).
func Fig6(cfg Config) (*Artifact, error) {
	cfg = cfg.withDefaults()
	const word = 0x5443 // "TC"
	cycles := 4
	// The trace follows one word on one device cycle by cycle — an
	// inherently serial experiment; it rides the engine as a single item
	// so the Workers knob is honored uniformly across the registry.
	traces, err := parallel.Map(cfg.pool(), 1, func(int) ([]core.TraceStep, error) {
		dev, err := cfg.newDevice(6)
		if err != nil {
			return nil, err
		}
		wm := make([]uint64, cfg.Part.Geometry.WordsPerSegment())
		for i := range wm {
			wm[i] = word
		}
		return core.ImprintWordTrace(dev, 0, wm, cycles)
	})
	if err != nil {
		return nil, err
	}
	steps := traces[0]
	bits := cfg.Part.Geometry.WordBits()
	tbl := report.Table{
		Title:   `Fig. 6 — imprinting "TC" = 5443h into one flash word`,
		Columns: []string{"cycle", "op", "word state (bit 15..0)"},
	}
	tbl.AddRow("-", "initial", bitString(0xFFFF, bits))
	for _, s := range steps {
		tbl.AddRow(s.Cycle, s.Op, bitString(s.Value, bits))
	}
	tbl.AddRow("-", "physical", core.GoodBadString(word, bits))
	tbl.AddNote("B = stressed (bad) cell at a watermark-0 position; G = untouched (good) cell")
	tbl.AddNote("the E/P sequence repeats N_PE times (%d shown)", cycles)
	return &Artifact{
		ID:     "fig6",
		Title:  "Imprinting a watermark into a flash word",
		Tables: []report.Table{tbl},
	}, nil
}

func bitString(v uint64, bits int) string {
	out := make([]byte, bits)
	for i := 0; i < bits; i++ {
		if v&(1<<uint(bits-1-i)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// RunFig6 adapts Fig6 to the registry.
func RunFig6(cfg Config) (*Artifact, error) {
	a, err := Fig6(cfg)
	if err != nil {
		return nil, err
	}
	if len(a.Tables) == 0 || len(a.Tables[0].Rows) == 0 {
		return nil, fmt.Errorf("experiment: fig6 produced no trace")
	}
	return a, nil
}
