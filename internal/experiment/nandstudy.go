package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("nand", RunNANDStudy) }

// NANDStudyResult is the structured outcome of the NAND applicability
// study (paper §VI: "the proposed method is applicable broadly to NOR
// and NAND flash memories").
type NANDStudyResult struct {
	Artifact *Artifact
	// MinBER maps N_PE to the minimum extraction BER (%) on NAND.
	MinBER map[int]float64
	// ImprintTime maps N_PE to the accelerated imprint duration.
	ImprintTime map[int]time.Duration
	// NORMinBER holds the NOR comparison at the same N_PE values.
	NORMinBER map[int]float64
}

// NANDStudy imprints and extracts watermarks on a simulated SLC NAND
// part — block-granular erase, page-granular sequential programming —
// using the same cell physics, and compares the operating points with
// the NOR results.
func NANDStudy(cfg Config) (*NANDStudyResult, error) {
	cfg = cfg.withDefaults()
	levels := []int{40_000, 80_000}
	if cfg.Fast {
		levels = []int{60_000}
	}
	lo, hi := 20*time.Microsecond, 32*time.Microsecond
	step := 500 * time.Nanosecond
	if cfg.Fast {
		step = time.Microsecond
	}
	geom := nand.SmallNAND()
	wm := make([]byte, geom.BlockBytes())
	text := "TRUSTED CHIPMAKER NAND DIE-SORT ACCEPT "
	for i := range wm {
		wm[i] = text[i%len(text)]
	}

	res := &NANDStudyResult{
		MinBER:      map[int]float64{},
		ImprintTime: map[int]time.Duration{},
		NORMinBER:   map[int]float64{},
	}
	tbl := report.Table{
		Title:   "EXT-NAND — Flashmark on SLC NAND (paper §VI applicability claim)",
		Columns: []string{"N_PE", "NAND min BER (%)", "at t_PE (µs)", "NOR min BER (%)", "NAND imprint (s)"},
	}
	plot := report.Plot{
		Title:  "EXT-NAND — extraction BER vs t_PE on NAND",
		XLabel: "t_PE (µs)",
		YLabel: "BER (%)",
	}
	cells := geom.CellsPerBlock()
	for _, npe := range levels {
		dev, err := nand.NewDevice(geom, nand.SLCTiming(), floatgate.DefaultParams(), cfg.Seed^uint64(npe))
		if err != nil {
			return nil, err
		}
		start := dev.Clock().Now()
		if err := nand.ImprintBlock(dev, 0, wm, nand.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return nil, err
		}
		res.ImprintTime[npe] = dev.Clock().Now() - start

		series := report.Series{Name: levelName(npe)}
		minBER, bestT := 101.0, time.Duration(0)
		for t := lo; t <= hi; t += step {
			got, err := nand.ExtractBlock(dev, 0, t)
			if err != nil {
				return nil, err
			}
			ber := 100 * float64(nand.BitErrors(got, wm)) / float64(cells)
			series.X = append(series.X, us(t))
			series.Y = append(series.Y, ber)
			if ber < minBER {
				minBER, bestT = ber, t
			}
		}
		res.MinBER[npe] = minBER
		plot.Series = append(plot.Series, series)

		// NOR comparison at the same stress, same sweep.
		norDev, err := cfg.newDevice(uint64(npe) + 0x4E)
		if err != nil {
			return nil, err
		}
		norWM := core.ReferenceWatermark(cfg.Part.Geometry.WordsPerSegment())
		if err := core.ImprintSegment(norDev, 0, norWM, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return nil, err
		}
		norMin := 101.0
		for t := lo; t <= hi; t += step {
			got, err := core.ExtractSegment(norDev, 0, core.ExtractOptions{TPEW: t})
			if err != nil {
				return nil, err
			}
			if ber := 100 * core.BER(got, norWM, cfg.Part.Geometry.WordBits()); ber < norMin {
				norMin = ber
			}
		}
		res.NORMinBER[npe] = norMin
		tbl.AddRow(levelName(npe), minBER, us(bestT), norMin, res.ImprintTime[npe].Seconds())
	}
	tbl.AddNote("same cell physics, block/page discipline instead of segment/word; the procedure carries over")
	res.Artifact = &Artifact{
		ID:     "nand",
		Title:  "Flashmark on NAND flash",
		Tables: []report.Table{tbl},
		Plots:  []report.Plot{plot},
	}
	return res, nil
}

// RunNANDStudy adapts NANDStudy to the registry.
func RunNANDStudy(cfg Config) (*Artifact, error) {
	res, err := NANDStudy(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
