package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("nand", RunNANDStudy) }

// NANDStudyResult is the structured outcome of the NAND applicability
// study (paper §VI: "the proposed method is applicable broadly to NOR
// and NAND flash memories").
type NANDStudyResult struct {
	Artifact *Artifact
	// MinBER maps N_PE to the minimum extraction BER (%) on NAND.
	MinBER map[int]float64
	// ImprintTime maps N_PE to the accelerated imprint duration.
	ImprintTime map[int]time.Duration
	// NORMinBER holds the NOR comparison at the same N_PE values.
	NORMinBER map[int]float64
}

// NANDStudy imprints and extracts watermarks on a simulated SLC NAND
// part — block-granular erase, page-granular sequential programming —
// using the same cell physics, and compares the operating points with
// the NOR results.
func NANDStudy(cfg Config) (*NANDStudyResult, error) {
	cfg = cfg.withDefaults()
	levels := []int{40_000, 80_000}
	if cfg.Fast {
		levels = []int{60_000}
	}
	lo, hi := 20*time.Microsecond, 32*time.Microsecond
	step := 500 * time.Nanosecond
	if cfg.Fast {
		step = time.Microsecond
	}
	geom := nand.SmallNAND()
	wmBytes := make([]byte, geom.BlockBytes())
	text := "TRUSTED CHIPMAKER NAND DIE-SORT ACCEPT "
	for i := range wmBytes {
		wmBytes[i] = text[i%len(text)]
	}
	// The adapter views the block as 16-bit words (little-endian bytes).
	wm := make([]uint64, len(wmBytes)/2)
	for w := range wm {
		wm[w] = uint64(wmBytes[2*w]) | uint64(wmBytes[2*w+1])<<8
	}

	res := &NANDStudyResult{
		MinBER:      map[int]float64{},
		ImprintTime: map[int]time.Duration{},
		NORMinBER:   map[int]float64{},
	}
	tbl := report.Table{
		Title:   "EXT-NAND — Flashmark on SLC NAND (paper §VI applicability claim)",
		Columns: []string{"N_PE", "NAND min BER (%)", "at t_PE (µs)", "NOR min BER (%)", "NAND imprint (s)"},
	}
	plot := report.Plot{
		Title:  "EXT-NAND — extraction BER vs t_PE on NAND",
		XLabel: "t_PE (µs)",
		YLabel: "BER (%)",
	}
	cells := geom.CellsPerBlock()
	// Per level there are TWO independent devices — the NAND block under
	// test and the NOR comparison chip — so the grid fans out as
	// levels × {nand, nor} with per-device operation order untouched.
	type sweepOut struct {
		series  report.Series
		minBER  float64
		bestT   time.Duration
		imprint time.Duration
	}
	outs, err := parallel.Map(cfg.pool(), 2*len(levels), func(idx int) (sweepOut, error) {
		npe := levels[idx/2]
		if idx%2 == 0 {
			// The NAND chip rides the very same core procedures as the
			// NOR comparison below — only the fabricator differs.
			dev, err := nand.Open(geom, nand.SLCTiming(), floatgate.DefaultParams(), cfg.Seed^uint64(npe))
			if err != nil {
				return sweepOut{}, err
			}
			if dev, err = cfg.applyPhysics(dev); err != nil {
				return sweepOut{}, err
			}
			start := dev.Clock().Now()
			if err := core.ImprintSegment(dev, 0, wm, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
				return sweepOut{}, err
			}
			out := sweepOut{series: report.Series{Name: levelName(npe)}, minBER: 101.0, imprint: dev.Clock().Now() - start}
			for t := lo; t <= hi; t += step {
				got, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: t})
				if err != nil {
					return sweepOut{}, err
				}
				ber := 100 * float64(core.BitErrors(got, wm, dev.Geometry().WordBits())) / float64(cells)
				out.series.X = append(out.series.X, us(t))
				out.series.Y = append(out.series.Y, ber)
				if ber < out.minBER {
					out.minBER, out.bestT = ber, t
				}
			}
			return out, nil
		}
		// NOR comparison at the same stress, same sweep.
		norDev, err := cfg.newDevice(uint64(npe) + 0x4E)
		if err != nil {
			return sweepOut{}, err
		}
		norWM := core.ReferenceWatermark(cfg.Part.Geometry.WordsPerSegment())
		if err := core.ImprintSegment(norDev, 0, norWM, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return sweepOut{}, err
		}
		out := sweepOut{minBER: 101.0}
		for t := lo; t <= hi; t += step {
			got, err := core.ExtractSegment(norDev, 0, core.ExtractOptions{TPEW: t})
			if err != nil {
				return sweepOut{}, err
			}
			if ber := 100 * core.BER(got, norWM, cfg.Part.Geometry.WordBits()); ber < out.minBER {
				out.minBER = ber
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for li, npe := range levels {
		nandOut, norOut := outs[2*li], outs[2*li+1]
		res.ImprintTime[npe] = nandOut.imprint
		res.MinBER[npe] = nandOut.minBER
		res.NORMinBER[npe] = norOut.minBER
		plot.Series = append(plot.Series, nandOut.series)
		tbl.AddRow(levelName(npe), nandOut.minBER, us(nandOut.bestT), norOut.minBER, nandOut.imprint.Seconds())
	}
	tbl.AddNote("same cell physics, block/page discipline instead of segment/word; the procedure carries over")
	res.Artifact = &Artifact{
		ID:     "nand",
		Title:  "Flashmark on NAND flash",
		Tables: []report.Table{tbl},
		Plots:  []report.Plot{plot},
	}
	return res, nil
}

// RunNANDStudy adapts NANDStudy to the registry.
func RunNANDStudy(cfg Config) (*Artifact, error) {
	res, err := NANDStudy(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
