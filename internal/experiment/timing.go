package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
	"github.com/flashmark/flashmark/internal/vclock"
)

func init() { register("timing", RunTiming) }

// TimingResult is the structured outcome of the §V timing study.
type TimingResult struct {
	Artifact *Artifact
	// Imprint maps (N_PE, accelerated) to the virtual imprint duration.
	ImprintBaseline    map[int]time.Duration
	ImprintAccelerated map[int]time.Duration
	// Extract is the virtual duration of a replica extraction including
	// host readout (paper: ~170 ms).
	Extract time.Duration
	// OverheadSegments is the flash footprint (paper: one segment).
	OverheadSegments int
}

// paper §V timing anchors, in seconds.
var paperImprintBaseline = map[int]float64{40_000: 1380, 70_000: 2415}
var paperImprintAccelerated = map[int]float64{40_000: 387, 70_000: 678}

// Timing reproduces the §V time/overhead discussion: imprint time as a
// function of N_PE for the baseline (full nominal erase) and accelerated
// (premature erase exit) procedures, and the extraction time with
// replicated watermarks.
func Timing(cfg Config) (*TimingResult, error) {
	cfg = cfg.withDefaults()
	levels := []int{40_000, 70_000}
	if cfg.Fast {
		levels = []int{40_000}
	}
	wm := core.ReferenceWatermark(cfg.Part.Geometry.WordsPerSegment())
	res := &TimingResult{
		ImprintBaseline:    map[int]time.Duration{},
		ImprintAccelerated: map[int]time.Duration{},
		OverheadSegments:   1,
	}
	tbl := report.Table{
		Title:   "§V — imprint time per procedure and stress count",
		Columns: []string{"N_PE", "procedure", "time (s)", "paper (s)", "speedup"},
	}
	// Every timing measurement below runs on its own device (baseline vs
	// accelerated imprints per level, the extraction breakdown, and the
	// fast-NOR projections), so the whole study is one fan-out: a flat
	// item list with a union result, assembled serially afterwards.
	type item struct {
		kind string // "imprint" | "extract" | "fastnor"
		npe  int
		acc  bool
	}
	var items []item
	for _, npe := range levels {
		for _, acc := range []bool{false, true} {
			items = append(items, item{kind: "imprint", npe: npe, acc: acc})
		}
	}
	extractIdx := len(items)
	items = append(items, item{kind: "extract"})
	fastIdx := len(items)
	items = append(items, item{kind: "fastnor", acc: false}, item{kind: "fastnor", acc: true})

	type itemOut struct {
		elapsed time.Duration
		ledger  map[vclock.OpClass]time.Duration
	}
	outs, err := parallel.Map(cfg.pool(), len(items), func(i int) (itemOut, error) {
		switch it := items[i]; it.kind {
		case "imprint":
			dev, err := cfg.newDevice(uint64(it.npe)*7 + 1)
			if err != nil {
				return itemOut{}, err
			}
			start := dev.Clock().Now()
			if err := core.ImprintSegment(dev, 0, wm, core.ImprintOptions{NPE: it.npe, Accelerated: it.acc}); err != nil {
				return itemOut{}, err
			}
			return itemOut{elapsed: dev.Clock().Now() - start}, nil
		case "extract":
			// Extraction time: one extraction of a 7-replica watermark
			// with 3 majority reads, including the serial host readout of
			// the raw data.
			dev, err := cfg.newDevice(99)
			if err != nil {
				return itemOut{}, err
			}
			if err := core.ImprintSegment(dev, 0, wm, core.ImprintOptions{NPE: 1000, Accelerated: true}); err != nil {
				return itemOut{}, err
			}
			start := dev.Clock().Now()
			startLedger := dev.Ledger().Snapshot()
			if _, err := core.ExtractSegment(dev, 0, core.ExtractOptions{
				TPEW:        25 * time.Microsecond,
				Reads:       3,
				HostReadout: true,
			}); err != nil {
				return itemOut{}, err
			}
			return itemOut{elapsed: dev.Clock().Now() - start, ledger: dev.Ledger().Sub(startLedger)}, nil
		default: // "fastnor"
			fdev, err := cfg.open(mcu.PartFastNOR(), cfg.Seed^0xFA57)
			if err != nil {
				return itemOut{}, err
			}
			fwm := core.ReferenceWatermark(mcu.PartFastNOR().Geometry.WordsPerSegment())
			start := fdev.Clock().Now()
			if err := core.ImprintSegment(fdev, 0, fwm, core.ImprintOptions{NPE: 40_000, Accelerated: it.acc}); err != nil {
				return itemOut{}, err
			}
			return itemOut{elapsed: fdev.Clock().Now() - start}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	for li, npe := range levels {
		baseline := outs[2*li].elapsed
		accelerated := outs[2*li+1].elapsed
		res.ImprintBaseline[npe] = baseline
		res.ImprintAccelerated[npe] = accelerated
		speedup := float64(baseline) / float64(accelerated)
		tbl.AddRow(levelName(npe), "baseline", baseline.Seconds(), paperImprintBaseline[npe], "1.0x")
		tbl.AddRow(levelName(npe), "accelerated", accelerated.Seconds(), paperImprintAccelerated[npe],
			formatSpeedup(speedup))
	}
	tbl.AddNote("paper reports a ~3.5x reduction from the premature erase exit")

	res.Extract = outs[extractIdx].elapsed
	diff := outs[extractIdx].ledger

	etbl := report.Table{
		Title:   "§V — extraction time breakdown (3-read, replicated watermark)",
		Columns: []string{"component", "time (ms)"},
	}
	for _, class := range []vclock.OpClass{vclock.OpErase, vclock.OpProgram, vclock.OpPartialErase, vclock.OpRead, mcu.OpHost, vclock.OpOverhead} {
		if d, ok := diff[class]; ok {
			etbl.AddRow(string(class), float64(d)/float64(time.Millisecond))
		}
	}
	etbl.AddRow("total", float64(res.Extract)/float64(time.Millisecond))
	etbl.AddNote("paper: ~170 ms with multiple replicas")
	etbl.AddNote("flash overhead: %d segment (%d bytes)", res.OverheadSegments, cfg.Part.Geometry.SegmentBytes)

	// Extension: the paper predicts stand-alone NOR chips with faster
	// erase/program imprint "significantly" faster; measure it.
	ftbl := report.Table{
		Title:   "EXT — imprint time on a stand-alone fast NOR part (paper §V projection)",
		Columns: []string{"part", "procedure", "40K imprint (s)"},
	}
	for j, name := range []string{"baseline", "accelerated"} {
		ftbl.AddRow("FAST-NOR", name, outs[fastIdx+j].elapsed.Seconds())
	}
	ftbl.AddNote("MSP430-class part needs 1381 s / 386 s for the same imprint")

	res.Artifact = &Artifact{
		ID:     "timing",
		Title:  "Imprint and extraction times (paper §V)",
		Tables: []report.Table{tbl, etbl, ftbl},
	}
	return res, nil
}

func formatSpeedup(v float64) string {
	whole := int(v)
	tenth := int(v*10) % 10
	return itoa(whole) + "." + itoa(tenth) + "x"
}

// RunTiming adapts Timing to the registry.
func RunTiming(cfg Config) (*Artifact, error) {
	res, err := Timing(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
