package experiment

import "testing"

func TestRetentionWatermarkSurvivesAging(t *testing.T) {
	res, err := Retention(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for age, errs := range res.MajorityErrsByAge {
		if errs != 0 {
			t.Errorf("age %d: %d majority errors; the watermark should not fade", age, errs)
		}
	}
	// Retention drift is asymmetric (damaged cells drift further), so the
	// raw BER must not explode with age.
	if res.BERByAge[10] > res.BERByAge[0]*1.5+1 {
		t.Errorf("BER grew from %.2f%% to %.2f%% over 10 years", res.BERByAge[0], res.BERByAge[10])
	}
	if res.Artifact == nil || len(res.Artifact.Tables) == 0 {
		t.Fatal("artifact incomplete")
	}
}

func TestTimingFastNORExtension(t *testing.T) {
	a, err := Run("timing", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tables) != 3 {
		t.Fatalf("timing artifact has %d tables, want 3 (imprint, extract, fast-NOR)", len(a.Tables))
	}
}
