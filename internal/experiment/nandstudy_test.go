package experiment

import (
	"testing"
	"time"
)

func TestNANDStudyCarriesOver(t *testing.T) {
	res, err := NANDStudy(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	ber := res.MinBER[60_000]
	if ber <= 0 || ber > 20 {
		t.Errorf("NAND min BER at 60K = %.2f%%, want a usable operating point", ber)
	}
	// Same physics, same order of magnitude as NOR.
	nor := res.NORMinBER[60_000]
	if ber > nor*3+3 {
		t.Errorf("NAND BER %.2f%% far above NOR %.2f%%", ber, nor)
	}
	// Imprint cost is real but bounded (SLC timings, 60K cycles).
	if res.ImprintTime[60_000] <= 0 || res.ImprintTime[60_000] > 30*time.Minute {
		t.Errorf("NAND imprint time = %v", res.ImprintTime[60_000])
	}
}
