package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/baseline"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func init() { register("supplychain", RunSupplyChain) }

// SupplyResult is the structured outcome of the supply-chain experiment.
type SupplyResult struct {
	Artifact *Artifact
	Matrix   *counterfeit.ConfusionMatrix
	// BaselineFalseAccepts counts counterfeits each baseline accepted.
	MetadataFalseAccepts    int
	EraseTimingFalseAccepts int
	// FlashmarkFalseAccepts counts counterfeits Flashmark accepted
	// (the replay-imprint residual risk lands here by design).
	FlashmarkFalseAccepts int
	FlashmarkFalseRejects int
	// AuditCaughtClone reports whether the batch die-ID audit refused the
	// replay clone that physics alone passed.
	AuditCaughtClone bool
}

// SupplyChain runs a mixed chip population through Flashmark verification
// and the prior-work comparators, quantifying the §I claims: current
// practice (metadata) is forgeable, usage-based detectors catch only
// recycling, and Flashmark catches re-entered rejects, forgeries, clones
// and rebrands (with replay imprinting as the honest residual risk).
func SupplyChain(cfg Config) (*SupplyResult, error) {
	cfg = cfg.withDefaults()
	perClass := 3
	if cfg.Fast {
		perClass = 1
	}
	key := []byte("trusted-chipmaker-signing-key")
	factory := counterfeit.FactoryConfig{
		Fab:          cfg.fab(cfg.Part),
		Codec:        wmcode.Codec{Key: key},
		Manufacturer: "TC",
	}
	verifier := &counterfeit.Verifier{
		Codec:          wmcode.Codec{Key: key},
		Manufacturer:   "TC",
		TPEW:           25 * time.Microsecond,
		CheckRecycling: true,
		Audit:          counterfeit.NewAuditor(),
	}
	spec := counterfeit.PopulationSpec{
		counterfeit.ClassGenuineAccept:   perClass,
		counterfeit.ClassGenuineReject:   perClass,
		counterfeit.ClassRecycled:        perClass,
		counterfeit.ClassMetadataForgery: perClass,
		counterfeit.ClassDigitalClone:    perClass,
		counterfeit.ClassTopUpTamper:     perClass,
		counterfeit.ClassUnmarked:        perClass,
		counterfeit.ClassReplayImprint:   1,
	}
	matrix, outcomes, err := counterfeit.RunPopulation(spec, factory, verifier, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &SupplyResult{
		Matrix:                matrix,
		FlashmarkFalseAccepts: matrix.FalseAccepts(),
		FlashmarkFalseRejects: matrix.FalseRejects(),
	}

	// Baseline comparators over the same population. Fabrication is
	// deterministic, so rebuilding each chip gives the comparators
	// pristine copies (the verifier's extraction already consumed the
	// original's segment content, which baselines would misread).
	mtbl := report.Table{
		Title:   "TAB-SUPPLY — per-chip verdicts: Flashmark vs prior work",
		Columns: []string{"chip class", "flashmark verdict", "metadata check", "erase-timing [7]", "should accept"},
	}
	eraseDet := &baseline.EraseTimingDetector{}
	die := uint64(1000)
	reIndex := map[counterfeit.ChipClass]int{}
	for _, o := range outcomes {
		i := reIndex[o.Class]
		reIndex[o.Class] = i + 1
		seed := parallel.SubSeed(cfg.Seed^(uint64(o.Class)<<32), uint64(i))
		die++
		dev, err := counterfeit.Fabricate(o.Class, factory, seed, die)
		if err != nil {
			return nil, err
		}
		_, metaOK, err := baseline.MetadataCheck(dev, 0, wmcode.Codec{Key: key}, 7)
		if err != nil {
			metaOK = false
		}
		segAddr := cfg.Part.Geometry.SegmentBytes
		assess, err := eraseDet.Assess(dev, segAddr)
		if err != nil {
			return nil, err
		}
		baselineVerdict := "accept"
		if assess.UsedFlash {
			baselineVerdict = "refuse (used)"
		}
		metaVerdict := "accept"
		if !metaOK {
			metaVerdict = "refuse"
		}
		if metaOK && !o.Class.ShouldAccept() {
			res.MetadataFalseAccepts++
		}
		if !assess.UsedFlash && !o.Class.ShouldAccept() {
			res.EraseTimingFalseAccepts++
		}
		mtbl.AddRow(o.Class.String(), o.Verdict.String(), metaVerdict, baselineVerdict, o.Class.ShouldAccept())
	}
	mtbl.AddNote("metadata check false-accepts: %d; erase-timing false-accepts: %d; Flashmark false-accepts: %d (replay-imprint residual risk)",
		res.MetadataFalseAccepts, res.EraseTimingFalseAccepts, res.FlashmarkFalseAccepts)

	// Audit epilogue: a replay victim/clone pair flowing through the same
	// batch — the clone carries the victim's die ID and is refused.
	victim, err := counterfeit.Fabricate(counterfeit.ClassGenuineAccept, factory, cfg.Seed^0xD1E, 99_001)
	if err != nil {
		return nil, err
	}
	clone, err := counterfeit.Fabricate(counterfeit.ClassReplayImprint, factory, cfg.Seed^0xD1F, 99_001)
	if err != nil {
		return nil, err
	}
	vres, err := verifier.Verify(victim)
	if err != nil {
		return nil, err
	}
	cres, err := verifier.Verify(clone)
	if err != nil {
		return nil, err
	}
	mtbl.AddRow("replay victim (die 99001)", vres.Verdict.String(), "accept", "accept", true)
	mtbl.AddRow("replay clone (die 99001)", cres.Verdict.String(), "accept", "accept", false)
	mtbl.AddNote("batch die-ID audit: duplicates flagged = %v", verifier.Audit.Duplicates())
	res.AuditCaughtClone = cres.Verdict == counterfeit.VerdictDuplicateID

	ctbl := report.Table{
		Title:   "TAB-SUPPLY — Flashmark confusion matrix",
		Columns: []string{"ground truth \\ verdicts", "counts"},
	}
	for _, line := range splitLines(matrix.String()) {
		if line != "" {
			ctbl.AddRow(line, "")
		}
	}
	ctbl.AddNote("correct accept/refuse rate: %.1f%%; false accepts %d; false rejects %d",
		100*matrix.CorrectAcceptRate(), matrix.FalseAccepts(), matrix.FalseRejects())

	res.Artifact = &Artifact{
		ID:     "supplychain",
		Title:  "Supply-chain verification: Flashmark vs current practice and prior work",
		Tables: []report.Table{mtbl, ctbl},
	}
	return res, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// RunSupplyChain adapts SupplyChain to the registry.
func RunSupplyChain(cfg Config) (*Artifact, error) {
	res, err := SupplyChain(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
