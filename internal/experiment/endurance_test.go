package experiment

import "testing"

func TestEnduranceDiminishingReturns(t *testing.T) {
	res, err := Endurance(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// BER keeps improving (or holds) past endurance...
	if res.MinBER[150_000] > res.MinBER[60_000] {
		t.Errorf("BER rose past endurance: %v", res.MinBER)
	}
	// ...and extraction stability improves with it: fewer cells sit
	// metastably near the threshold once the classes separate, even
	// though individual worn cells read noisier (ReadSigmaUs grows).
	if res.ReadInstability[150_000] > res.ReadInstability[60_000] {
		t.Errorf("instability should fall with separation: %v", res.ReadInstability)
	}
	// And imprint time keeps climbing.
	if res.ImprintTime[150_000] <= res.ImprintTime[60_000] {
		t.Errorf("imprint time should grow: %v", res.ImprintTime)
	}
}
