package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("retention", RunRetention) }

// RetentionResult is the structured outcome of the watermark-longevity
// extension experiment (paper §VI positions long-term tracking as the
// goal; the DAC paper itself measures fresh chips only).
type RetentionResult struct {
	Artifact *Artifact
	// BERByAge maps storage age in years to the single-read extraction
	// BER (%) at the published t_PEW.
	BERByAge map[int]float64
	// MajorityErrsByAge maps age to residual bit errors after 7-replica
	// majority voting.
	MajorityErrsByAge map[int]int
}

// Retention measures how the watermark ages: a chip is imprinted at the
// production operating point, stored unpowered for up to 20 years
// (retention drift accumulates, amplified on damaged cells), and
// extracted at the originally published t_PEW. The asymmetry of the
// drift — damaged cells drift further — means the watermark does not
// fade; the usable window shifts slightly instead.
func Retention(cfg Config) (*RetentionResult, error) {
	cfg = cfg.withDefaults()
	ages := []int{0, 1, 5, 10, 20}
	if cfg.Fast {
		ages = []int{0, 10}
	}
	const (
		npe      = 80_000
		replicas = 7
	)
	segWords := cfg.Part.Geometry.WordsPerSegment()
	bits := cfg.Part.Geometry.WordBits()
	payload := core.ReferenceWatermark(segWords / replicas)
	img, err := core.Replicate(payload, replicas, segWords)
	if err != nil {
		return nil, err
	}
	tpew := 25 * time.Microsecond

	res := &RetentionResult{BERByAge: map[int]float64{}, MajorityErrsByAge: map[int]int{}}
	tbl := report.Table{
		Title:   "EXT-RET — watermark longevity under retention aging (80 K imprint, t_PEW fixed at 25 µs)",
		Columns: []string{"age (years)", "single-read BER (%)", "7-replica majority errors (bits)"},
	}
	series := report.Series{Name: "single-read BER"}

	// The ages accumulate on ONE device (each extraction also wears it),
	// so the chain is inherently serial: it rides the engine as a single
	// item so the Workers knob is honored uniformly across the registry.
	type ageOut struct {
		raw     float64
		majErrs int
	}
	chains, err := parallel.Map(cfg.pool(), 1, func(int) ([]ageOut, error) {
		dev, err := cfg.newDevice(0x0E7)
		if err != nil {
			return nil, err
		}
		if err := core.ImprintSegment(dev, 0, img, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return nil, err
		}
		var outs []ageOut
		for _, age := range ages {
			if err := device.Age(dev, float64(age)); err != nil {
				return nil, err
			}
			extracted, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: tpew})
			if err != nil {
				return nil, err
			}
			raw := 100 * core.BER(extracted[:len(payload)], payload, bits)
			voted, err := core.MajorityDecode(extracted, len(payload), replicas, bits)
			if err != nil {
				return nil, err
			}
			outs = append(outs, ageOut{raw: raw, majErrs: core.BitErrors(voted, payload, bits)})
		}
		return outs, nil
	})
	if err != nil {
		return nil, err
	}
	for i, age := range ages {
		out := chains[0][i]
		res.BERByAge[age] = out.raw
		res.MajorityErrsByAge[age] = out.majErrs
		tbl.AddRow(age, out.raw, out.majErrs)
		series.X = append(series.X, float64(age))
		series.Y = append(series.Y, out.raw)
	}
	tbl.AddNote("retention drift slows damaged cells further, so aging does not erase the watermark")
	res.Artifact = &Artifact{
		ID:     "retention",
		Title:  "Watermark longevity (extension beyond the paper)",
		Tables: []report.Table{tbl},
		Plots: []report.Plot{{
			Title:  "EXT-RET — single-read BER vs storage age",
			XLabel: "age (years)",
			YLabel: "BER (%)",
			Series: []report.Series{series},
		}},
	}
	return res, nil
}

// RunRetention adapts Retention to the registry.
func RunRetention(cfg Config) (*Artifact, error) {
	res, err := Retention(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
