package experiment

import "testing"

func TestECCStudyTradeoffs(t *testing.T) {
	res, err := ECCStudy(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.ByNPE[40_000]
	if len(rows) != 5 {
		t.Fatalf("schemes = %d", len(rows))
	}
	byName := map[string]ECCSchemeResult{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// Every protection scheme must beat no protection.
	raw := byName["none"].ByteErrs
	for _, name := range []string{"3-replica", "7-replica", "secded", "secded+3rep"} {
		if byName[name].ByteErrs > raw {
			t.Errorf("%s (%d byte errs) worse than unprotected (%d)", name, byName[name].ByteErrs, raw)
		}
	}
	// SECDED must be cheaper than any replication.
	if byName["secded"].Redundancy >= byName["3-replica"].Redundancy {
		t.Errorf("secded redundancy %.2f not below 3-replica %.2f",
			byName["secded"].Redundancy, byName["3-replica"].Redundancy)
	}
	// More redundancy within a family helps: 7-replica <= 3-replica.
	if byName["7-replica"].ByteErrs > byName["3-replica"].ByteErrs {
		t.Errorf("7-replica (%d) worse than 3-replica (%d)",
			byName["7-replica"].ByteErrs, byName["3-replica"].ByteErrs)
	}
}
