package experiment

import (
	"time"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/parallel"
	"github.com/flashmark/flashmark/internal/report"
)

func init() { register("temperature", RunTemperature) }

// TemperatureResult is the structured outcome of the cross-temperature
// verification study (extension: the paper lists thermal effects among
// the physical processes bounding extraction accuracy).
type TemperatureResult struct {
	Artifact *Artifact
	// FixedBER maps ambient °C to the BER when extracting with the
	// 25 °C-calibrated t_PEW uncompensated.
	FixedBER map[int]float64
	// CompensatedBER maps ambient °C to the BER when t_PEW is scaled by
	// the family's published temperature coefficient.
	CompensatedBER map[int]float64
}

// Temperature imprints at 25 °C and extracts across the commercial
// temperature range, with and without temperature-compensating the
// partial erase time. Erase physics is thermally assisted, so an
// uncompensated verifier drifts off the calibrated window; scaling t_PEW
// by the published coefficient restores it.
func Temperature(cfg Config) (*TemperatureResult, error) {
	cfg = cfg.withDefaults()
	temps := []int{0, 25, 50, 70}
	if cfg.Fast {
		temps = []int{0, 25, 70}
	}
	const npe = 80_000
	baseTPEW := 25 * time.Microsecond
	wm := core.ReferenceWatermark(cfg.Part.Geometry.WordsPerSegment())
	bits := cfg.Part.Geometry.WordBits()
	coeff := cfg.Part.Params.TempCoeffPerC

	res := &TemperatureResult{FixedBER: map[int]float64{}, CompensatedBER: map[int]float64{}}
	tbl := report.Table{
		Title:   "EXT-TEMP — verification across the commercial temperature range (80 K imprint, calibrated at 25 °C)",
		Columns: []string{"ambient (°C)", "fixed t_PEW BER (%)", "compensated t_PEW (µs)", "compensated BER (%)"},
	}
	// The temperature ladder reuses ONE imprinted device — every
	// extraction also wears it, so the sweep order is load-bearing and
	// the chain rides the engine as a single serial item.
	type tempOut struct {
		fixed, comp float64
		compTPEW    time.Duration
	}
	chains, err := parallel.Map(cfg.pool(), 1, func(int) ([]tempOut, error) {
		dev, err := cfg.newDevice(0x7E43)
		if err != nil {
			return nil, err
		}
		if err := core.ImprintSegment(dev, 0, wm, core.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			return nil, err
		}
		var outs []tempOut
		for _, temp := range temps {
			if err := device.SetAmbientTempC(dev, float64(temp)); err != nil {
				return nil, err
			}
			got, err := core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: baseTPEW})
			if err != nil {
				return nil, err
			}
			fixed := 100 * core.BER(got, wm, bits)
			// Compensation: the erase slows by (1 + coeff*(25-T)); stretch
			// the pulse by the same factor.
			factor := 1 + coeff*(25-float64(temp))
			compTPEW := time.Duration(float64(baseTPEW) * factor)
			got, err = core.ExtractSegment(dev, 0, core.ExtractOptions{TPEW: compTPEW})
			if err != nil {
				return nil, err
			}
			outs = append(outs, tempOut{
				fixed:    fixed,
				comp:     100 * core.BER(got, wm, bits),
				compTPEW: compTPEW,
			})
		}
		return outs, nil
	})
	if err != nil {
		return nil, err
	}
	for i, temp := range temps {
		out := chains[0][i]
		res.FixedBER[temp] = out.fixed
		res.CompensatedBER[temp] = out.comp
		tbl.AddRow(temp, out.fixed, us(out.compTPEW), out.comp)
	}
	tbl.AddNote("the published extraction window should carry the family's temperature coefficient (here %.3f per °C)", coeff)
	res.Artifact = &Artifact{
		ID:     "temperature",
		Title:  "Temperature compensation of the extraction window",
		Tables: []report.Table{tbl},
	}
	return res, nil
}

// RunTemperature adapts Temperature to the registry.
func RunTemperature(cfg Config) (*Artifact, error) {
	res, err := Temperature(cfg)
	if err != nil {
		return nil, err
	}
	return res.Artifact, nil
}
