package challenge_test

import (
	"bytes"
	"testing"

	"github.com/flashmark/flashmark/internal/challenge"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/reram"
	"github.com/flashmark/flashmark/internal/wmcode"
)

// backends lists every substrate the interrogation must be neutral
// over.
func backends() map[string]device.Fab {
	return map[string]device.Fab{
		"nor":   mcu.Fab(mcu.PartSmallSim()),
		"nand":  nand.Fab(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams()),
		"reram": reram.DefaultFab(),
	}
}

// TestResponseProperties pins, per backend: the response balances near
// 50/50 (the self-calibration worked), the fingerprint is reproducible
// on the same die, different dice diverge, and different nonces
// diverge on the same die.
func TestResponseProperties(t *testing.T) {
	for name, fab := range backends() {
		t.Run(name, func(t *testing.T) {
			pol := challenge.Policy{Nonce: 0xC4A11E}
			devA, err := fab(0xD1E)
			if err != nil {
				t.Fatal(err)
			}
			respA, err := challenge.Interrogate(devA, pol)
			if err != nil {
				t.Fatal(err)
			}
			if respA.Bits == 0 || respA.PulseUs <= 0 {
				t.Fatalf("degenerate response: %+v", respA)
			}
			frac := float64(respA.Ones) / float64(respA.Bits)
			if frac < 0.30 || frac > 0.70 {
				t.Fatalf("response not balanced: %d/%d ones (%.2f)", respA.Ones, respA.Bits, frac)
			}

			// Same die, fresh instance: identical fingerprint.
			devA2, err := fab(0xD1E)
			if err != nil {
				t.Fatal(err)
			}
			respA2, err := challenge.Interrogate(devA2, pol)
			if err != nil {
				t.Fatal(err)
			}
			if respA2.Fingerprint != respA.Fingerprint {
				t.Fatal("same die produced different fingerprints")
			}

			// Different die: different fingerprint.
			devB, err := fab(0xB0B)
			if err != nil {
				t.Fatal(err)
			}
			respB, err := challenge.Interrogate(devB, pol)
			if err != nil {
				t.Fatal(err)
			}
			if respB.Fingerprint == respA.Fingerprint {
				t.Fatal("different dice produced the same fingerprint")
			}

			// Different nonce: different challenge, different response.
			devA3, err := fab(0xD1E)
			if err != nil {
				t.Fatal(err)
			}
			respN, err := challenge.Interrogate(devA3, challenge.Policy{Nonce: 0x0DDBA11})
			if err != nil {
				t.Fatal(err)
			}
			if respN.Fingerprint == respA.Fingerprint {
				t.Fatal("different nonces produced the same fingerprint")
			}
		})
	}
}

// TestCloneDiverges pins the axis the subsystem exists for: a
// replay-imprint clone — bit-exact watermark, GENUINE physics verdict
// — still answers the challenge with its own die's fingerprint, not
// the victim's.
func TestCloneDiverges(t *testing.T) {
	for name, fab := range backends() {
		t.Run(name, func(t *testing.T) {
			cfg := counterfeit.FactoryConfig{Fab: fab, Codec: wmcode.Codec{Key: []byte("k")}}
			victim, err := counterfeit.Fabricate(counterfeit.ClassGenuineAccept, cfg, 0x5EED1, 9001)
			if err != nil {
				t.Fatal(err)
			}
			clone, err := counterfeit.Fabricate(counterfeit.ClassReplayImprint, cfg, 0x5EED2, 9001)
			if err != nil {
				t.Fatal(err)
			}
			pol := challenge.Policy{}
			rv, err := challenge.Interrogate(victim, pol)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := challenge.Interrogate(clone, pol)
			if err != nil {
				t.Fatal(err)
			}
			if rv.Fingerprint == rc.Fingerprint {
				t.Fatal("clone reproduced the victim's challenge fingerprint")
			}
		})
	}
}

// TestSerializedDeterminism pins the service contract: interrogating
// two devices loaded from the same chip bytes yields the same
// fingerprint, even when the chip has a history (imprint + field use).
func TestSerializedDeterminism(t *testing.T) {
	cfg := counterfeit.FactoryConfig{Fab: reram.DefaultFab(), Codec: wmcode.Codec{Key: []byte("k")}}
	dev, err := counterfeit.Fabricate(counterfeit.ClassRecycled, cfg, 0xCAFE, 31337)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fps := make([]challenge.Response, 2)
	for i := range fps {
		loaded, err := reram.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		fps[i], err = challenge.Interrogate(loaded, challenge.Policy{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if fps[0].Fingerprint != fps[1].Fingerprint {
		t.Fatal("same chip bytes produced different fingerprints")
	}
	if fps[0].PulseUs != fps[1].PulseUs || fps[0].Ones != fps[1].Ones {
		t.Fatalf("response metadata diverged: %+v vs %+v", fps[0], fps[1])
	}
}

// TestPolicyValidate covers the policy guard rails.
func TestPolicyValidate(t *testing.T) {
	if err := (challenge.Policy{}).Validate(); err != nil {
		t.Fatalf("zero policy invalid: %v", err)
	}
	bad := []challenge.Policy{
		{Reads: 4},
		{Reads: -3},
		{CalibrationSteps: 40},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("invalid policy %+v accepted", p)
		}
	}
	if _, err := challenge.Interrogate(mustFab(t, mcu.Fab(mcu.PartSmallSim())), challenge.Policy{Reads: 2}); err == nil {
		t.Fatal("interrogation with an even read count was accepted")
	}
}

func mustFab(t *testing.T, fab device.Fab) device.Device {
	t.Helper()
	d, err := fab(1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
