// Package challenge derives per-chip challenge-response fingerprints
// from programming-disturb statistics, in the spirit of the intrinsic
// NAND PUF (arXiv 2111.05459) and SIGNED (arXiv 2010.05209): the
// response is a function of *which cells switch fast* under a
// partially-completed erase, an analog identity the die carries in its
// process variation and that no digital copy reproduces.
//
// The interrogation is substrate-neutral — it uses only the
// device.Device surface, so one flow serves NOR, NAND and ReRAM
// chips. A challenge nonce selects the probed cell population (the
// pattern programmed into the probe segment); the probe pulse is
// *self-calibrated* against the die's own switching distribution by
// binary search, so the response bits split near 50/50 and carry
// maximal per-cell entropy regardless of the substrate's absolute
// timing scale.
//
// Determinism contract: for a fixed chip state (serialized chip
// bytes) and a fixed Policy, Interrogate is a pure function — the
// verification service loads a fresh device from the posted bytes per
// request, so enrollment-time and screening-time fingerprints of the
// same physical chip match exactly, while a different die (same
// digital content, different process variation) diverges in the
// response bits with overwhelming probability.
package challenge

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"time"

	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/rng"
)

// Policy fixes the interrogation parameters. The zero value selects
// the defaults; the nonce should be deployment-chosen (it defines the
// challenge, and with it the probed cell population).
type Policy struct {
	// Nonce selects the challenge: the probe pattern is derived from it
	// alone, so any party holding the nonce can reproduce the
	// interrogation. Zero selects DefaultNonce.
	Nonce uint64
	// Reads is the odd majority-read count for the response probe
	// (zero selects 5).
	Reads int
	// CalibrationSteps is the binary-search depth for the probe pulse
	// (zero selects 12).
	CalibrationSteps int
}

// DefaultNonce is the nonce used when the policy leaves it zero.
const DefaultNonce = 0x464C4153_484D4B43 // "FLASHMKC"

func (p Policy) withDefaults() Policy {
	if p.Nonce == 0 {
		p.Nonce = DefaultNonce
	}
	if p.Reads == 0 {
		p.Reads = 5
	}
	if p.CalibrationSteps == 0 {
		p.CalibrationSteps = 12
	}
	return p
}

// Validate reports whether the policy is usable.
func (p Policy) Validate() error {
	p = p.withDefaults()
	if p.Reads%2 == 0 || p.Reads < 0 {
		return fmt.Errorf("challenge: majority reads must be odd and positive, got %d", p.Reads)
	}
	if p.CalibrationSteps < 1 || p.CalibrationSteps > 32 {
		return fmt.Errorf("challenge: calibration steps %d out of range [1,32]", p.CalibrationSteps)
	}
	return nil
}

// Response is one interrogation outcome.
type Response struct {
	// Nonce echoes the challenge.
	Nonce uint64
	// Segment is the probe segment index (the last segment of the
	// array, clear of the watermark segment and factory data segments).
	Segment int
	// PulseUs is the self-calibrated probe pulse in microseconds.
	PulseUs float64
	// Ones / Bits count the response-vector population: of Bits probed
	// cells, Ones switched within the calibrated pulse.
	Ones int
	Bits int
	// Fingerprint is the SHA-256 digest of the full response vector,
	// ready for registry enrollment as a second physical-identity axis.
	Fingerprint registry.Fingerprint
}

// fingerprintDomain separates challenge digests from every other
// fingerprint domain in the registry.
const fingerprintDomain = "flashmark-challenge/v1"

// Interrogate runs the challenge-response flow on a chip: program a
// nonce-derived pattern into the probe segment, self-calibrate a
// partial-erase pulse to the die's median switching time over the
// probed cells, then read the response vector under majority voting.
// The probe segment's digital content is destroyed (like watermark
// extraction, the flow is erase-based); conditioning wear of the ~15
// probe cycles is negligible against the imprint scale.
func Interrogate(dev device.Device, pol Policy) (Response, error) {
	pol = pol.withDefaults()
	if err := pol.Validate(); err != nil {
		return Response{}, err
	}
	geom := dev.Geometry()
	seg := geom.TotalSegments() - 1
	addr, err := geom.AddrOfSegment(seg)
	if err != nil {
		return Response{}, err
	}
	words := geom.WordsPerSegment()
	mask := uint64(1)<<uint(geom.WordBits()) - 1

	// The challenge pattern depends on the nonce alone (never on the
	// chip), so the same nonce probes the same cell population on every
	// chip of the geometry. Zero bits are the probed population: those
	// cells are driven programmed and race the probe pulse.
	pattern := make([]uint64, words)
	r := rng.New(pol.Nonce).Split(0x50554646) // "PUFF"
	probed := 0
	for i := range pattern {
		pattern[i] = r.Uint64() & mask
		probed += geom.WordBits() - bits.OnesCount64(pattern[i])
	}
	if probed == 0 {
		return Response{}, fmt.Errorf("challenge: nonce %#x probes no cells", pol.Nonce)
	}

	if err := dev.Unlock(); err != nil {
		return Response{}, err
	}
	defer dev.Lock()

	// Upper search bound: the adaptive erase measures how long the
	// slowest probed cell takes to switch, so the calibrated pulse is
	// certain to lie inside [0, hi].
	if err := dev.EraseSegment(addr); err != nil {
		return Response{}, err
	}
	if err := dev.ProgramBlock(addr, pattern); err != nil {
		return Response{}, err
	}
	hiPulse, err := dev.EraseSegmentAdaptive(addr)
	if err != nil {
		return Response{}, err
	}

	// Binary-search the pulse that switches about half the probed
	// cells: the median of the die's switching distribution, where the
	// response bits carry maximal entropy. Each trial rewrites the
	// pattern (the aborted erase leaves the segment dirty), aborts the
	// erase at the trial pulse, and takes a single read.
	probe := func(pulse time.Duration) (int, error) {
		if err := dev.EraseSegment(addr); err != nil {
			return 0, err
		}
		if err := dev.ProgramBlock(addr, pattern); err != nil {
			return 0, err
		}
		if err := dev.PartialEraseSegment(addr, pulse); err != nil {
			return 0, err
		}
		got, err := dev.ReadSegment(addr)
		if err != nil {
			return 0, err
		}
		ones := 0
		for i, v := range got {
			// Count probed cells (pattern 0) that read erased (1).
			ones += bits.OnesCount64(v &^ pattern[i] & mask)
		}
		return ones, nil
	}
	lo, hi := time.Duration(0), hiPulse
	for step := 0; step < pol.CalibrationSteps; step++ {
		mid := lo + (hi-lo)/2
		ones, err := probe(mid)
		if err != nil {
			return Response{}, err
		}
		if ones*2 < probed {
			lo = mid
		} else {
			hi = mid
		}
	}
	pulse := lo + (hi-lo)/2

	// The response probe: rewrite, abort at the calibrated pulse, and
	// majority-vote the reads so near-threshold cells answer stably.
	if err := dev.EraseSegment(addr); err != nil {
		return Response{}, err
	}
	if err := dev.ProgramBlock(addr, pattern); err != nil {
		return Response{}, err
	}
	if err := dev.PartialEraseSegment(addr, pulse); err != nil {
		return Response{}, err
	}
	votes := make([]int, words*geom.WordBits())
	for read := 0; read < pol.Reads; read++ {
		got, err := dev.ReadSegment(addr)
		if err != nil {
			return Response{}, err
		}
		for w, v := range got {
			for v != 0 {
				bit := bits.TrailingZeros64(v)
				votes[w*geom.WordBits()+bit]++
				v &= v - 1
			}
		}
	}
	dev.ChargeHostTransfer(pol.Reads * geom.SegmentBytes)

	// The response vector: one bit per probed cell, 1 if the cell
	// switched within the calibrated pulse (majority of reads saw it
	// erased). Digest domain, nonce, geometry-stable location, the
	// quantized pulse, and the vector itself.
	h := sha256.New()
	h.Write([]byte(fingerprintDomain))
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeU64(pol.Nonce)
	writeU64(uint64(seg))
	writeU64(uint64(pulse / time.Nanosecond))
	ones := 0
	for w := 0; w < words; w++ {
		var v uint64
		for bit := 0; bit < geom.WordBits(); bit++ {
			if pattern[w]&(1<<uint(bit)) != 0 {
				continue // not probed
			}
			if votes[w*geom.WordBits()+bit]*2 > pol.Reads {
				v |= 1 << uint(bit)
				ones++
			}
		}
		writeU64(v)
	}
	var fp registry.Fingerprint
	h.Sum(fp[:0])

	return Response{
		Nonce:       pol.Nonce,
		Segment:     seg,
		PulseUs:     float64(pulse) / float64(time.Microsecond),
		Ones:        ones,
		Bits:        probed,
		Fingerprint: fp,
	}, nil
}
