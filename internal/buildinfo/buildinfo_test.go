package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func withInfo(t *testing.T, info *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := read
	read = func() (*debug.BuildInfo, bool) { return info, ok }
	t.Cleanup(func() { read = orig })
}

func TestStringWithFullInfo(t *testing.T) {
	withInfo(t, &debug.BuildInfo{
		Main: debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	got := String("fmverifyd")
	for _, want := range []string{"fmverifyd v1.2.3", "commit 0123456789ab", "(modified)", "go1."} {
		if !strings.Contains(got, want) {
			t.Fatalf("banner %q missing %q", got, want)
		}
	}
}

func TestStringDevelFallbacks(t *testing.T) {
	withInfo(t, &debug.BuildInfo{}, true)
	if got := String("flashmark"); !strings.HasPrefix(got, "flashmark (devel)") {
		t.Fatalf("empty module version must render (devel), got %q", got)
	}
	withInfo(t, nil, false)
	if got := String("flashmark"); !strings.Contains(got, "(unknown build)") {
		t.Fatalf("missing build info must degrade gracefully, got %q", got)
	}
}

func TestStringRealBinary(t *testing.T) {
	// Against the real toolchain data: must never panic, always names
	// the binary.
	if got := String("fmexperiments"); !strings.HasPrefix(got, "fmexperiments ") {
		t.Fatalf("got %q", got)
	}
}
