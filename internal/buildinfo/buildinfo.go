// Package buildinfo renders the build identity every flashmark binary
// reports under -version: the module version and the VCS revision the
// Go toolchain stamped into the binary. No build-time ldflags are
// needed; everything comes from runtime/debug.ReadBuildInfo, so plain
// `go build ./cmd/...` produces fully identified binaries.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// read is swapped out by tests.
var read = debug.ReadBuildInfo

// String renders the one-line version banner for the named binary,
// e.g. "fmverifyd (devel) commit 1a2b3c4d (modified) go1.22.5".
func String(binary string) string {
	info, ok := read()
	if !ok {
		return fmt.Sprintf("%s (unknown build) %s", binary, runtime.Version())
	}
	version := info.Main.Version
	if version == "" {
		version = "(devel)"
	}
	var revision, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = " (modified)"
			}
		}
	}
	out := fmt.Sprintf("%s %s", binary, version)
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		out += fmt.Sprintf(" commit %s%s", revision, modified)
	}
	return out + " " + runtime.Version()
}
