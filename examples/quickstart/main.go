// Quickstart: imprint a watermark into a simulated NOR flash segment by
// repeated P/E stressing, wipe the chip the way a counterfeiter would,
// and recover the watermark anyway through a timed partial erase.
package main

import (
	"fmt"
	"log"
	"time"

	flashmark "github.com/flashmark/flashmark"
)

func main() {
	// Fabricate a chip. The seed is the die's physical identity: a
	// different seed is a different piece of silicon.
	dev, err := flashmark.NewDevice(flashmark.PartMSP430F5438(), 42)
	if err != nil {
		log.Fatal(err)
	}
	geom := dev.Geometry()
	fmt.Printf("chip: %s, %d KB flash, %d-byte segments\n",
		dev.PartName(), geom.TotalBytes()/1024, geom.SegmentBytes)

	// Encode the die-sort metadata and replicate it 7 times across the
	// reserved segment.
	codec := flashmark.Codec{Key: []byte("trusted-chipmaker-key")}
	payload, err := codec.Encode(flashmark.Payload{
		Manufacturer: "TC",
		DieID:        1001,
		SpeedGrade:   2,
		Status:       flashmark.StatusAccept,
		YearWeek:     2627,
	})
	if err != nil {
		log.Fatal(err)
	}
	img, err := flashmark.Replicate(payload, 7, geom.WordsPerSegment())
	if err != nil {
		log.Fatal(err)
	}

	// Imprint: 80,000 erase+program cycles. Watermark bits at logic 0
	// become permanently slow-to-erase ("bad") cells.
	start := dev.Clock().Now()
	err = flashmark.Imprint(dev, 0, img, flashmark.ImprintOptions{NPE: 80_000, Accelerated: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imprinted in %v of device time (accelerated procedure)\n", dev.Clock().Now()-start)

	// A counterfeiter erases the segment and writes something else.
	if err := dev.Unlock(); err != nil {
		log.Fatal(err)
	}
	if err := dev.EraseSegment(0); err != nil {
		log.Fatal(err)
	}
	if err := dev.ProgramBlock(0, []uint64{0xDEAD}); err != nil {
		log.Fatal(err)
	}
	dev.Lock()
	fmt.Println("counterfeiter wiped the segment and wrote cover data")

	// Extraction ignores the digital content entirely: erase, program
	// all cells, partial erase for t_PEW, read. Stressed cells resist
	// the partial erase and read 0 — the watermark reappears.
	start = dev.Clock().Now()
	words, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{
		TPEW:        25 * time.Microsecond,
		Reads:       3,
		HostReadout: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	views, err := flashmark.ReplicaViews(words, codec.PayloadWords(), 7)
	if err != nil {
		log.Fatal(err)
	}
	got, report, err := codec.DecodeReplicas(views)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted in %v of device time\n", dev.Clock().Now()-start)
	fmt.Printf("recovered watermark: mfg=%s die=%d grade=%d status=%s date=%d\n",
		got.Manufacturer, got.DieID, got.SpeedGrade, got.Status, got.YearWeek)
	fmt.Printf("integrity: crc=%v signature=%v tampered=%v\n",
		report.CRCOK, report.SignatureOK, report.Tampered())
	raw := flashmark.BER(words[:codec.PayloadWords()], payload, 16)
	fmt.Printf("raw first-replica BER %.2f%%; fused replica decode: error-free=%v\n",
		100*raw, !report.Tampered())
}
