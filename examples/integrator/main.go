// Integrator: incoming inspection at a system integrator. A shipment of
// chips of unknown provenance is verified with the manufacturer's
// published extraction parameters; counterfeits of every §I class are
// caught, without contacting the manufacturer or keeping any per-chip
// database.
package main

import (
	"fmt"
	"log"
	"time"

	flashmark "github.com/flashmark/flashmark"
)

func main() {
	part := flashmark.PartSmallSim()
	key := []byte("trusted-chipmaker-key")
	factory := flashmark.FactoryConfig{
		Fab:          flashmark.NORFab(part),
		Codec:        flashmark.Codec{Key: key},
		Manufacturer: "TC",
	}

	// The shipment: mostly genuine, with one of each §I counterfeit
	// pathway mixed in by an unscrupulous distributor.
	shipment := []struct {
		class flashmark.ChipClass
		note  string
	}{
		{flashmark.ClassGenuineAccept, "genuine production die"},
		{flashmark.ClassGenuineAccept, "genuine production die"},
		{flashmark.ClassGenuineReject, "fall-out die leaked from packaging site"},
		{flashmark.ClassRecycled, "salvaged from e-waste, relabeled as new"},
		{flashmark.ClassMetadataForgery, "blank die with forged metadata record"},
		{flashmark.ClassDigitalClone, "bit-copy of a genuine watermark segment"},
		{flashmark.ClassTopUpTamper, "REJECT die 'upgraded' by extra stressing"},
		{flashmark.ClassUnmarked, "rebranded third-party part"},
	}

	verifier := &flashmark.Verifier{
		Codec:          flashmark.Codec{Key: key},
		Manufacturer:   "TC",
		TPEW:           25 * time.Microsecond, // from the manufacturer's published window
		CheckRecycling: true,
	}

	fmt.Println("incoming inspection: 8 chips")
	fmt.Printf("%-4s %-42s %-15s %s\n", "#", "actual provenance (unknown to verifier)", "verdict", "decision")
	accepted, refused := 0, 0
	for i, item := range shipment {
		dev, err := flashmark.Fabricate(item.class, factory, uint64(0xC000+i), uint64(5000+i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := verifier.Verify(dev)
		if err != nil {
			log.Fatal(err)
		}
		decision := "REFUSE"
		if res.Verdict.Accepted() {
			decision = "accept"
			accepted++
		} else {
			refused++
		}
		fmt.Printf("%-4d %-42s %-15s %s\n", i+1, item.note, res.Verdict, decision)
	}
	fmt.Printf("\naccepted %d, refused %d\n", accepted, refused)
	fmt.Println("verification needed: the published t_PEW window + the public")
	fmt.Println("verification key — no chip database, no manufacturer contact.")
}
