// Nandmark: Flashmark on NAND flash (paper §VI: "the proposed method is
// applicable broadly to NOR and NAND flash memories"). Same cell physics,
// different discipline: erases happen a block at a time and pages must be
// programmed in order — the imprint and extraction procedures carry over
// at block granularity.
package main

import (
	"fmt"
	"log"
	"time"

	flashmark "github.com/flashmark/flashmark"
)

func main() {
	geom := flashmark.SmallNAND()
	dev, err := flashmark.NewNANDDevice(geom, flashmark.SLCTiming(), flashmark.DefaultCellParams(), 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NAND chip: %d blocks x %d pages x %d B\n",
		geom.Blocks, geom.PagesPerBlock, geom.PageBytes)

	// Watermark covering the reserved block (block 0): SECDED-encoded
	// metadata replicated 5x (the ECC study's lesson: the code corrects
	// one bad cell per word, replication handles the rest), padded with
	// 0xFF so the padding cells stay good.
	const replicas = 5
	meta := []byte("TC NAND DIE-7701 ACCEPT GRADE-1 WK27")
	encoded := flashmark.ECCEncodeBytes(meta)
	stored, err := flashmark.Replicate(encoded, replicas, geom.BlockBytes()/2)
	if err != nil {
		log.Fatal(err)
	}
	wm := make([]byte, geom.BlockBytes())
	for i, w := range stored {
		wm[2*i] = byte(w)
		wm[2*i+1] = byte(w >> 8)
	}

	start := dev.Clock().Now()
	if err := flashmark.NANDImprint(dev, 0, wm, flashmark.NANDImprintOptions{NPE: 80_000, Accelerated: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imprinted block 0 in %v of device time (SLC timings)\n", dev.Clock().Now()-start)

	// Counterfeiter wipes the block; the wear remains.
	if err := dev.EraseBlock(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("counterfeiter erased the block")

	got, err := flashmark.NANDExtract(dev, 0, 25*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	words := make([]uint64, len(got)/2)
	for i := range words {
		words[i] = uint64(got[2*i]) | uint64(got[2*i+1])<<8
	}
	voted, err := flashmark.MajorityDecode(words, len(encoded), replicas, 16)
	if err != nil {
		log.Fatal(err)
	}
	recovered, stats, err := flashmark.ECCDecodeBytes(voted, len(meta))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %q\n", recovered)
	fmt.Printf("ECC: %d words, %d corrected, %d double errors\n",
		stats.Words, stats.Corrected, stats.DoubleErrors)
}
