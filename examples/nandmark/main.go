// Nandmark: Flashmark on NAND flash (paper §VI: "the proposed method is
// applicable broadly to NOR and NAND flash memories"). Same cell physics,
// different discipline: erases happen a block at a time and pages must be
// programmed in order — the imprint and extraction procedures carry over
// at block granularity.
package main

import (
	"fmt"
	"log"
	"time"

	flashmark "github.com/flashmark/flashmark"
)

func main() {
	geom := flashmark.SmallNAND()
	dev, err := flashmark.NewNANDDevice(geom, flashmark.SLCTiming(), flashmark.DefaultCellParams(), 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NAND chip: %d blocks x %d pages x %d B\n",
		geom.Blocks, geom.PagesPerBlock, geom.PageBytes)

	// Watermark covering the reserved block (block 0): SECDED-encoded
	// metadata replicated 5x (the ECC study's lesson: the code corrects
	// one bad cell per word, replication handles the rest), padded with
	// 0xFF so the padding cells stay good.
	const replicas = 5
	meta := []byte("TC NAND DIE-7701 ACCEPT GRADE-1 WK27")
	encoded := flashmark.ECCEncodeBytes(meta)
	stored, err := flashmark.Replicate(encoded, replicas, geom.BlockBytes()/2)
	if err != nil {
		log.Fatal(err)
	}
	// The NAND chip satisfies the same Device interface as NOR parts, so
	// the standard Imprint/Extract procedures drive it directly.
	start := dev.Clock().Now()
	if err := flashmark.Imprint(dev, 0, stored, flashmark.ImprintOptions{NPE: 80_000, Accelerated: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imprinted block 0 in %v of device time (SLC timings)\n", dev.Clock().Now()-start)

	// Counterfeiter wipes the block; the wear remains.
	if err := dev.EraseSegment(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("counterfeiter erased the block")

	words, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 25 * time.Microsecond})
	if err != nil {
		log.Fatal(err)
	}
	voted, err := flashmark.MajorityDecode(words, len(encoded), replicas, 16)
	if err != nil {
		log.Fatal(err)
	}
	recovered, stats, err := flashmark.ECCDecodeBytes(voted, len(meta))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %q\n", recovered)
	fmt.Printf("ECC: %d words, %d corrected, %d double errors\n",
		stats.Words, stats.Corrected, stats.DoubleErrors)
}
