// Attack: a counterfeiter's-eye view. Starting from a REJECT-marked
// fall-out die (the paper's §I scenario), try every flash operation
// available — erase/rewrite, digital cloning onto a fresh chip, stress
// top-up — and watch each attempt fail at verification. Ends with the
// one attack that physics cannot stop (full replay imprint) and why it
// is still a bad business for the counterfeiter.
package main

import (
	"fmt"
	"log"
	"time"

	flashmark "github.com/flashmark/flashmark"
)

func main() {
	part := flashmark.PartSmallSim()
	key := []byte("trusted-chipmaker-key")
	factory := flashmark.FactoryConfig{
		Fab:          flashmark.NORFab(part),
		Codec:        flashmark.Codec{Key: key},
		Manufacturer: "TC",
	}
	verifier := &flashmark.Verifier{
		Codec:        flashmark.Codec{Key: key},
		Manufacturer: "TC",
		TPEW:         25 * time.Microsecond,
	}

	verify := func(label string, dev flashmark.Device) {
		res, err := verifier.Verify(dev)
		if err != nil {
			log.Fatal(err)
		}
		outcome := "REFUSED"
		if res.Verdict.Accepted() {
			outcome = "ACCEPTED (!)"
		}
		fmt.Printf("  -> verdict %-15s %s\n\n", res.Verdict, outcome)
		_ = label
	}

	// The counterfeiter holds a genuine die that was watermarked REJECT
	// at die sort.
	fmt.Println("attack 0: sell the REJECT die as-is")
	dev, err := flashmark.Fabricate(flashmark.ClassGenuineReject, factory, 0xE001, 6001)
	if err != nil {
		log.Fatal(err)
	}
	verify("as-is", dev)

	fmt.Println("attack 1: erase the watermark segment and program a forged ACCEPT record")
	dev, err = flashmark.Fabricate(flashmark.ClassGenuineReject, factory, 0xE002, 6002)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.Unlock(); err != nil {
		log.Fatal(err)
	}
	if err := dev.EraseSegment(0); err != nil {
		log.Fatal(err)
	}
	codec := flashmark.Codec{Key: key} // suppose the key even leaked
	forged, err := codec.Encode(flashmark.Payload{Manufacturer: "TC", DieID: 6002, Status: flashmark.StatusAccept})
	if err != nil {
		log.Fatal(err)
	}
	img, err := flashmark.Replicate(forged, 7, part.Geometry.WordsPerSegment())
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.ProgramBlock(0, img); err != nil {
		log.Fatal(err)
	}
	dev.Lock()
	fmt.Println("  (digital content now reads as a perfect signed ACCEPT record)")
	fmt.Println("  but extraction senses wear, not data: the REJECT cells are still slow")
	verify("erase+rewrite", dev)

	fmt.Println("attack 2: stress additional cells to morph REJECT toward ACCEPT")
	dev, err = flashmark.Fabricate(flashmark.ClassTopUpTamper, factory, 0xE003, 6003)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  (stressing can only turn good cells bad — each data bit is stored")
	fmt.Println("   with its complement, so one-way damage leaves a detectable tie)")
	verify("top-up", dev)

	fmt.Println("attack 3: digitally clone a genuine ACCEPT segment onto a fresh chip")
	dev, err = flashmark.Fabricate(flashmark.ClassDigitalClone, factory, 0xE004, 6004)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  (plain programming leaves no wear; extraction reads a blank)")
	verify("clone", dev)

	fmt.Println("attack 4: replay the FULL imprint procedure on a fresh inferior chip")
	dev, err = flashmark.Fabricate(flashmark.ClassReplayImprint, factory, 0xE005, 6005)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  (the residual risk: real stress is real stress; physics alone")
	fmt.Println("   cannot tell this from a genuine imprint)")
	verify("replay", dev)

	fmt.Println("attack 4 revisited: batch audit of die identities")
	fmt.Println("  (the replay necessarily duplicates its victim's die ID — the")
	fmt.Println("   attacker cannot mint fresh signed IDs without the key)")
	verifier.Audit = flashmark.NewAuditor()
	victim, err := flashmark.Fabricate(flashmark.ClassGenuineAccept, factory, 0xE006, 7007)
	if err != nil {
		log.Fatal(err)
	}
	clone, err := flashmark.Fabricate(flashmark.ClassReplayImprint, factory, 0xE007, 7007)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  victim chip (die 7007):")
	verify("victim", victim)
	fmt.Println("  replayed clone (same die 7007):")
	verify("clone", clone)
	fmt.Println("remaining exposure: the clone passes only until any other chip in")
	fmt.Println("the batch carries the same die ID — plus hundreds of seconds of")
	fmt.Println("tester time per chip and a leaked signing key as preconditions.")
}
