// Die-sort: the manufacturer-side workflow (paper §IV). A lot of dice
// comes off the tester; passing dice are watermarked ACCEPT and failing
// dice REJECT, with the extraction window calibrated once per device
// family and published to system integrators.
package main

import (
	"fmt"
	"log"
	"time"

	flashmark "github.com/flashmark/flashmark"
)

func main() {
	part := flashmark.PartSmallSim()
	codec := flashmark.Codec{Key: []byte("trusted-chipmaker-key")}

	// 1. One-time family calibration on reference dice: find the t_PEW
	// window that minimizes extraction errors at the production N_PE.
	const npe = 80_000
	fmt.Println("calibrating extraction window on 3 reference dice...")
	cal, err := flashmark.Calibrate(flashmark.NORFab(part), []uint64{9001, 9002, 9003}, npe, flashmark.CalibrateOptions{
		SweepLo:   20 * time.Microsecond,
		SweepHi:   32 * time.Microsecond,
		SweepStep: time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published window: t_PEW in [%v, %v], best %v (BER %.2f%%)\n\n",
		cal.WindowLo, cal.WindowHi, cal.Best, 100*cal.BestBER)

	// 2. Die-sort a lot of 8 dice; die 3 and 6 fail parametric test.
	fails := map[int]bool{3: true, 6: true}
	var totalImprint time.Duration
	fmt.Println("die-sorting lot FM26-A (8 dice)...")
	for die := 1; die <= 8; die++ {
		dev, err := flashmark.NewDevice(part, uint64(0xA000+die))
		if err != nil {
			log.Fatal(err)
		}
		status := flashmark.StatusAccept
		if fails[die] {
			status = flashmark.StatusReject
		}
		payload, err := codec.Encode(flashmark.Payload{
			Manufacturer: "TC",
			DieID:        uint64(260000 + die),
			SpeedGrade:   2,
			Status:       status,
			YearWeek:     2627,
		})
		if err != nil {
			log.Fatal(err)
		}
		img, err := flashmark.Replicate(payload, 7, part.Geometry.WordsPerSegment())
		if err != nil {
			log.Fatal(err)
		}
		start := dev.Clock().Now()
		if err := flashmark.Imprint(dev, 0, img, flashmark.ImprintOptions{NPE: npe, Accelerated: true}); err != nil {
			log.Fatal(err)
		}
		elapsed := dev.Clock().Now() - start
		totalImprint += elapsed

		// Outgoing QA: extract and confirm before shipping.
		words, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: cal.Best, Reads: 3})
		if err != nil {
			log.Fatal(err)
		}
		views, err := flashmark.ReplicaViews(words, codec.PayloadWords(), 7)
		if err != nil {
			log.Fatal(err)
		}
		got, rep, err := codec.DecodeReplicas(views)
		qa := "OK"
		if err != nil || rep.Tampered() || got.Status != status {
			qa = "FAILED READBACK"
		}
		fmt.Printf("  die %d: %-6s  imprint %8v  QA %s\n", die, status, elapsed.Round(time.Second), qa)
	}
	fmt.Printf("\nlot imprint time: %v total, %v per die (tester time)\n",
		totalImprint.Round(time.Second), (totalImprint / 8).Round(time.Second))
	fmt.Println("REJECT dice can ship to the crusher; even if they leak, the")
	fmt.Println("imprinted REJECT cannot be turned into ACCEPT by any flash operation.")
}
