#!/usr/bin/env sh
# End-to-end smoke of the distributed verification plane: one registry
# shard as a replicated primary/follower pair behind a stateless
# fmverifyd in -cluster mode. The scenario is the failover story told
# start to finish: enroll a genuine identity through the cluster, kill
# the shard primary outright (SIGKILL — no drain), and screen a
# replay-imprint clone of the enrolled die. The verify client must fail
# over (promote the follower) transparently and the clone must still
# come back DUPLICATE-ID — the enrollment survived the crash because it
# was synchronously replicated before it was ever acknowledged.
#
# Usage: scripts/cluster_smoke.sh [workdir]
# Artifacts (chip files, responses, daemon logs) are left in the
# workdir (default: ./cluster-smoke-out) for CI upload.
set -eu

workdir=${1:-cluster-smoke-out}
primary_addr=127.0.0.1:8940
follower_addr=127.0.0.1:8941
verify_addr=127.0.0.1:8942
base="http://$verify_addr"
key=cluster-smoke-key
mfg=TC

mkdir -p "$workdir"
go build -o "$workdir/fmregistryd" ./cmd/fmregistryd
go build -o "$workdir/fmverifyd" ./cmd/fmverifyd
go build -o "$workdir/flashmark" ./cmd/flashmark

"$workdir/fmregistryd" -version

# A genuine chip and its replay-imprint clone: same signed die id, a
# different physical die. Physics calls both GENUINE; only registry
# provenance can tell them apart.
"$workdir/flashmark" new -chip "$workdir/genuine.chip" -part FM-SIM16 -seed 42
"$workdir/flashmark" imprint -chip "$workdir/genuine.chip" -mfg "$mfg" -die 1001 -status accept -key "$key"
"$workdir/flashmark" new -chip "$workdir/clone.chip" -part FM-SIM16 -seed 88
"$workdir/flashmark" imprint -chip "$workdir/clone.chip" -mfg "$mfg" -die 1001 -status accept -key "$key"

# The shard: follower first (it must be listening before the primary's
# sync handshake can land), then a primary that refuses enrollments
# unless every record is replicated (-require-follower).
"$workdir/fmregistryd" -addr "$follower_addr" -dir "$workdir/follower" -role follower \
    >"$workdir/fmregistryd_follower.log" 2>&1 &
follower=$!
"$workdir/fmregistryd" -addr "$primary_addr" -dir "$workdir/primary" \
    -follower "$follower_addr" -require-follower \
    >"$workdir/fmregistryd_primary.log" 2>&1 &
primary=$!
"$workdir/fmverifyd" -addr "$verify_addr" -key "$key" -mfg "$mfg" \
    -cluster "$primary_addr,$follower_addr" \
    >"$workdir/fmverifyd.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" "$primary" "$follower" 2>/dev/null || true' EXIT

i=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: cluster stack did not become healthy" >&2
        cat "$workdir/fmverifyd.log" "$workdir/fmregistryd_primary.log" "$workdir/fmregistryd_follower.log" >&2
        exit 1
    fi
    sleep 0.2
done

assert_contains() {
    if ! grep -q "$2" "$1"; then
        echo "FAIL: $1 does not contain $2" >&2
        cat "$1" >&2
        exit 1
    fi
}

# Enroll through the cluster. The primary fsyncs, replicates, and only
# then acks — retry briefly in case the replication link is still in
# its first handshake.
i=0
until curl -sf -X POST --data-binary @"$workdir/genuine.chip" "$base/v1/enroll?source=cluster-smoke" \
    >"$workdir/enroll_genuine.json" 2>/dev/null && grep -q '"accepted":true' "$workdir/enroll_genuine.json"; do
    i=$((i + 1))
    if [ "$i" -gt 25 ]; then
        echo "FAIL: enrollment through the cluster never succeeded" >&2
        cat "$workdir/enroll_genuine.json" "$workdir/fmregistryd_primary.log" >&2
        exit 1
    fi
    sleep 0.2
done
assert_contains "$workdir/enroll_genuine.json" '"verdict":"GENUINE"'
assert_contains "$workdir/enroll_genuine.json" '"count":1'
echo "enrolled die 1001 through the replicated shard"

# Kill the primary without ceremony: the next registry operation from
# the verify tier must fail over to the follower and promote it.
kill -KILL "$primary"
wait "$primary" 2>/dev/null || true
echo "shard primary killed"

curl -sf -X POST --data-binary @"$workdir/clone.chip" "$base/v1/verify" \
    >"$workdir/verify_clone.json"
assert_contains "$workdir/verify_clone.json" '"verdict":"DUPLICATE-ID"'
assert_contains "$workdir/verify_clone.json" '"accepted":false'
echo "clone caught after failover: DUPLICATE-ID"

# The genuine chip itself still verifies (same fingerprint => no
# escalation) against the promoted follower.
curl -sf -X POST --data-binary @"$workdir/genuine.chip" "$base/v1/verify" \
    >"$workdir/verify_genuine.json"
assert_contains "$workdir/verify_genuine.json" '"verdict":"GENUINE"'

# And a second enrollment of the clone's identity at the promoted node
# is flagged as a conflict, not accepted as a fresh identity.
curl -sf -X POST --data-binary @"$workdir/clone.chip" "$base/v1/enroll?source=cluster-smoke" \
    >"$workdir/enroll_clone.json"
assert_contains "$workdir/enroll_clone.json" '"conflict":true'
echo "clone enrollment flagged as conflict at the promoted follower"

kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "FAIL: fmverifyd did not drain cleanly" >&2
    cat "$workdir/fmverifyd.log" >&2
    exit 1
fi
kill -TERM "$follower"
wait "$follower" || true
trap - EXIT

echo "cluster smoke done (artifacts in $workdir)"
