#!/usr/bin/env sh
# Bench-regression gate. Dispatches on the measured file's schema:
#
# flashmark-bench-physics/v1 (written by `make bench-physics`), judged
# against scripts/bench_physics_baseline.json:
#   - per-bench speedup (reference ns over fast ns) must stay within
#     ±20% of the baseline ratio: below -20% fails as a fast-path
#     regression; above +20% only prints a hint to refresh the
#     baseline (conservative round numbers, not a raw snapshot).
#   - the characterization sweep must additionally stay >= 3.0x, the
#     paper-reproduction acceptance floor for the batched physics.
#   - allocs/op on the steady-state read path must not exceed the
#     baseline (0: the warm read path never touches the heap).
#
# flashmark-bench-registry/v1 (written by `make bench-registry`), judged
# against scripts/bench_registry_baseline.json:
#   - fleet lookup must be allocation-free (allocs_op == 0) and
#     sub-microsecond (ns_op <= max_ns_op) at the recorded fleet size
#     (keys must match, so the gate can't be satisfied by shrinking
#     the index).
#   - durable enroll appends/fsync is reported for context only: on a
#     single-CPU runner RunParallel gives no overlap and the honest
#     value is 1.0, so group commit is proven by tests, not gated here.
#
# flashmark-bench-service/v1 (written by `make loadgen`), judged
# against scripts/bench_service_baseline.json:
#   - verify p99 latency must not exceed the SLO ceiling, and sustained
#     verifies/sec and enrolls/sec must stay above the floors.
#   - the combined shed rate (server 429s plus client-cap drops) must
#     stay under the overload budget, and no request may fail outright
#     (http_errors <= max_http_errors, normally 0).
#   - the clone storm must register: duplicate_id_verdicts has a floor,
#     proving the provenance overlay was live under load, not bypassed.
#
# flashmark-bench-hotpath/v1 (written by `make bench-hotpath`), judged
# against scripts/bench_hotpath_baseline.json:
#   - allocs/op is a hard ceiling on both the cache-miss and cache-hit
#     /v1/verify paths: the allocation profile is deterministic, so any
#     excess is a lifecycle regression (a dropped pool, a reflection
#     encoder creeping back in), not runner noise.
#   - chips-verified/sec has a loose floor on the miss path only,
#     proving the benchmark exercised real verifications.
#
# Raw ns/op ratios track the runner, not the code, and are never
# compared across machines; the registry ns_op ceiling and the service
# SLO bands are deliberately loose (paper acceptance bounds on shared CI
# runners, not regression tripwires).
#
# Usage: scripts/check_bench.sh [measured.json] [baseline.json]
set -eu

measured=${1:-BENCH_physics.json}
floor_characterize=3.0

# jfield FILE KEY -> first value of "KEY": in FILE (json.MarshalIndent
# layout: one field per line). Struct order puts lookup before
# enroll_durable, so the first ns_op is the lookup's.
jfield() {
    awk -v f="\"$2\":" '$1 == f { v = $2; gsub(/[",]/, "", v); print v; exit }' "$1"
}

schema=$(jfield "$measured" schema || true)

if [ "$schema" = "flashmark-bench-registry/v1" ]; then
    baseline=${2:-$(dirname "$0")/bench_registry_baseline.json}
    fail=0
    max_ns=$(jfield "$baseline" max_ns_op)
    max_allocs=$(jfield "$baseline" max_allocs_op)
    want_keys=$(jfield "$baseline" keys)
    got_ns=$(jfield "$measured" ns_op)
    got_allocs=$(jfield "$measured" allocs_op)
    got_keys=$(jfield "$measured" keys)
    if [ -z "$got_ns" ] || [ -z "$got_allocs" ] || [ -z "$got_keys" ]; then
        echo "FAIL: $measured has no lookup measurement (run make bench-registry)" >&2
        exit 1
    fi
    echo "registry lookup: ${got_ns} ns/op, ${got_allocs} allocs/op at ${got_keys} keys"
    if [ "$got_keys" != "$want_keys" ]; then
        echo "FAIL: lookup measured at ${got_keys} keys, acceptance requires ${want_keys}" >&2
        fail=1
    fi
    if awk -v g="$got_allocs" -v m="$max_allocs" 'BEGIN { exit (g + 0 <= m + 0) ? 1 : 0 }'; then
        echo "FAIL: fleet lookup allocates (${got_allocs} allocs/op > ${max_allocs})" >&2
        fail=1
    fi
    if awk -v g="$got_ns" -v m="$max_ns" 'BEGIN { exit (g + 0 <= m + 0) ? 1 : 0 }'; then
        echo "FAIL: fleet lookup ${got_ns} ns/op exceeds the ${max_ns} ns acceptance ceiling" >&2
        fail=1
    fi
    per_fsync=$(jfield "$measured" appends_per_fsync)
    if [ -n "$per_fsync" ]; then
        echo "registry enroll: ${per_fsync} appends/fsync (informational; 1.0 on single-CPU runners)"
    fi
    [ "$fail" -eq 0 ] && echo "bench gate OK"
    exit "$fail"
fi

if [ "$schema" = "flashmark-bench-hotpath/v1" ]; then
    baseline=${2:-$(dirname "$0")/bench_hotpath_baseline.json}
    fail=0

    # jsection FILE SECTION KEY -> value of "KEY": inside the "SECTION"
    # object (json.MarshalIndent layout: nested objects, one field per
    # line, sections closed by an indented brace).
    jsection() {
        awk -v s="\"$2\":" -v k="\"$3\":" '
            $1 == s { inside = 1; next }
            inside && $1 == k { v = $2; gsub(/[",]/, "", v); print v; exit }
            inside && /\}/ { inside = 0 }
        ' "$1"
    }

    for path in verify_miss verify_hit; do
        got_allocs=$(jsection "$measured" "$path" allocs_op)
        max_allocs=$(jsection "$baseline" "$path" max_allocs_op)
        if [ -z "$got_allocs" ]; then
            echo "FAIL: $measured has no $path measurement (run make bench-hotpath)" >&2
            exit 1
        fi
        echo "$path: ${got_allocs} allocs/op (max ${max_allocs}), $(jsection "$measured" "$path" chips_per_sec) chips/s"
        if awk -v g="$got_allocs" -v m="$max_allocs" 'BEGIN { exit (g + 0 <= m + 0) ? 1 : 0 }'; then
            echo "FAIL: $path ${got_allocs} allocs/op exceeds the hard ceiling ${max_allocs}" >&2
            fail=1
        fi
    done

    got_rate=$(jsection "$measured" verify_miss chips_per_sec)
    min_rate=$(jsection "$baseline" verify_miss min_chips_per_sec)
    if awk -v g="$got_rate" -v m="$min_rate" 'BEGIN { exit (g + 0 >= m + 0) ? 1 : 0 }'; then
        echo "FAIL: miss-path throughput ${got_rate} chips/s is below the ${min_rate} floor" >&2
        fail=1
    fi

    [ "$fail" -eq 0 ] && echo "bench gate OK"
    exit "$fail"
fi

if [ "$schema" = "flashmark-bench-service/v1" ]; then
    baseline=${2:-$(dirname "$0")/bench_service_baseline.json}
    fail=0
    sent=$(jfield "$measured" sent_requests)
    if [ -z "$sent" ] || [ "$sent" = 0 ]; then
        echo "FAIL: $measured reports no sent requests (run make loadgen)" >&2
        exit 1
    fi
    echo "service load: ${sent} requests sent ($(jfield "$measured" chips_verified) chips verified)"

    # ceiling KEY BASELINE_KEY LABEL -> fail if measured > baseline bound
    ceiling() {
        got=$(jfield "$measured" "$1")
        max=$(jfield "$baseline" "$2")
        echo "$3: ${got} (max ${max})"
        if awk -v g="$got" -v m="$max" 'BEGIN { exit (g + 0 <= m + 0) ? 1 : 0 }'; then
            echo "FAIL: $3 ${got} exceeds the SLO ceiling ${max}" >&2
            fail=1
        fi
    }
    # floor KEY BASELINE_KEY LABEL -> fail if measured < baseline bound
    floor() {
        got=$(jfield "$measured" "$1")
        min=$(jfield "$baseline" "$2")
        echo "$3: ${got} (min ${min})"
        if awk -v g="$got" -v m="$min" 'BEGIN { exit (g + 0 >= m + 0) ? 1 : 0 }'; then
            echo "FAIL: $3 ${got} is below the SLO floor ${min}" >&2
            fail=1
        fi
    }

    ceiling verify_p99_ms max_verify_p99_ms "verify p99"
    ceiling verify_p999_ms max_verify_p999_ms "verify p999"
    floor verifies_per_sec min_verifies_per_sec "verifies/sec"
    floor enrolls_per_sec min_enrolls_per_sec "enrolls/sec"
    ceiling shed_rate max_shed_rate "shed rate"
    ceiling http_errors max_http_errors "http errors"
    floor duplicate_id_verdicts min_duplicate_id "DUPLICATE-ID verdicts"

    [ "$fail" -eq 0 ] && echo "bench gate OK"
    exit "$fail"
fi

baseline=${2:-$(dirname "$0")/bench_physics_baseline.json}

# speedups FILE -> lines of "<bench> <speedup>", keyed off the 4-space
# indentation json.MarshalIndent gives the per-bench objects.
speedups() {
    awk '
        /^    "[a-z_]+": \{/ { name = $1; gsub(/[":{]/, "", name) }
        /"speedup":/ { v = $2; gsub(/,/, "", v); print name, v }
    ' "$1"
}

allocs() {
    awk '/"allocs_op":/ { v = $2; gsub(/,/, "", v); print v; exit }' "$1"
}

fail=0
speedups "$baseline" | while read -r bench base; do
    got=$(speedups "$measured" | awk -v b="$bench" '$1 == b { print $2 }')
    if [ -z "$got" ]; then
        echo "FAIL: $measured has no speedup for '$bench'" >&2
        exit 1
    fi
    echo "$bench: speedup ${got}x (baseline ${base}x)"
    if awk -v g="$got" -v b="$base" 'BEGIN { exit (g + 0 >= 0.8 * b) ? 1 : 0 }'; then
        echo "FAIL: $bench speedup ${got}x fell more than 20% below the baseline ${base}x" >&2
        exit 1
    fi
    if awk -v g="$got" -v b="$base" 'BEGIN { exit (g + 0 <= 1.2 * b) ? 1 : 0 }'; then
        echo "note: $bench speedup ${got}x is >20% above the baseline ${base}x -- consider raising scripts/bench_physics_baseline.json"
    fi
    if [ "$bench" = characterize ] &&
        awk -v g="$got" -v f="$floor_characterize" 'BEGIN { exit (g + 0 >= f) ? 1 : 0 }'; then
        echo "FAIL: characterization speedup ${got}x is below the ${floor_characterize}x acceptance floor" >&2
        exit 1
    fi
done || fail=1

got_allocs=$(allocs "$measured")
base_allocs=$(allocs "$baseline")
if [ -z "$got_allocs" ]; then
    echo "FAIL: $measured has no read_steady_state allocs_op" >&2
    fail=1
else
    echo "steady-state read: ${got_allocs} allocs/op (baseline ${base_allocs})"
    if awk -v g="$got_allocs" -v b="$base_allocs" 'BEGIN { exit (g + 0 <= b + 0) ? 1 : 0 }'; then
        echo "FAIL: steady-state read allocates (${got_allocs} allocs/op > baseline ${base_allocs})" >&2
        fail=1
    fi
fi

[ "$fail" -eq 0 ] && echo "bench gate OK"
exit "$fail"
