#!/usr/bin/env sh
# Physics bench-regression gate: compares a fresh BENCH_physics.json
# (schema flashmark-bench-physics/v1, written by `make bench-physics`)
# against the checked-in baseline scripts/bench_physics_baseline.json.
#
# Only machine-independent quantities are gated:
#   - per-bench speedup (reference ns over fast ns) must stay within
#     ±20% of the baseline ratio: below -20% fails as a fast-path
#     regression; above +20% only prints a hint to refresh the
#     baseline (conservative round numbers, not a raw snapshot).
#   - the characterization sweep must additionally stay >= 3.0x, the
#     paper-reproduction acceptance floor for the batched physics.
#   - allocs/op on the steady-state read path must not exceed the
#     baseline (0: the warm read path never touches the heap).
# Raw ns/op values are recorded for context but never compared — they
# track the runner, not the code.
#
# Usage: scripts/check_bench.sh [measured.json] [baseline.json]
set -eu

measured=${1:-BENCH_physics.json}
baseline=${2:-$(dirname "$0")/bench_physics_baseline.json}
floor_characterize=3.0

# speedups FILE -> lines of "<bench> <speedup>", keyed off the 4-space
# indentation json.MarshalIndent gives the per-bench objects.
speedups() {
    awk '
        /^    "[a-z_]+": \{/ { name = $1; gsub(/[":{]/, "", name) }
        /"speedup":/ { v = $2; gsub(/,/, "", v); print name, v }
    ' "$1"
}

allocs() {
    awk '/"allocs_op":/ { v = $2; gsub(/,/, "", v); print v; exit }' "$1"
}

fail=0
speedups "$baseline" | while read -r bench base; do
    got=$(speedups "$measured" | awk -v b="$bench" '$1 == b { print $2 }')
    if [ -z "$got" ]; then
        echo "FAIL: $measured has no speedup for '$bench'" >&2
        exit 1
    fi
    echo "$bench: speedup ${got}x (baseline ${base}x)"
    if awk -v g="$got" -v b="$base" 'BEGIN { exit (g + 0 >= 0.8 * b) ? 1 : 0 }'; then
        echo "FAIL: $bench speedup ${got}x fell more than 20% below the baseline ${base}x" >&2
        exit 1
    fi
    if awk -v g="$got" -v b="$base" 'BEGIN { exit (g + 0 <= 1.2 * b) ? 1 : 0 }'; then
        echo "note: $bench speedup ${got}x is >20% above the baseline ${base}x -- consider raising scripts/bench_physics_baseline.json"
    fi
    if [ "$bench" = characterize ] &&
        awk -v g="$got" -v f="$floor_characterize" 'BEGIN { exit (g + 0 >= f) ? 1 : 0 }'; then
        echo "FAIL: characterization speedup ${got}x is below the ${floor_characterize}x acceptance floor" >&2
        exit 1
    fi
done || fail=1

got_allocs=$(allocs "$measured")
base_allocs=$(allocs "$baseline")
if [ -z "$got_allocs" ]; then
    echo "FAIL: $measured has no read_steady_state allocs_op" >&2
    fail=1
else
    echo "steady-state read: ${got_allocs} allocs/op (baseline ${base_allocs})"
    if awk -v g="$got_allocs" -v b="$base_allocs" 'BEGIN { exit (g + 0 <= b + 0) ? 1 : 0 }'; then
        echo "FAIL: steady-state read allocates (${got_allocs} allocs/op > baseline ${base_allocs})" >&2
        fail=1
    fi
fi

[ "$fail" -eq 0 ] && echo "bench gate OK"
exit "$fail"
