#!/usr/bin/env sh
# Service-level SLO scenario: build fmverifyd and fmloadgen, prove the
# load schedule is reproducible (two -plan-only runs must print the same
# digest), and drive a live daemon with the fixed CI scenario. The
# measured BENCH_service.json is gated separately by
# `make loadgen-check` via scripts/check_bench.sh — the same
# measure-then-gate split the physics and registry benches use.
#
# Usage: scripts/loadgen_slo.sh [workdir]
# Artifacts (BENCH_service.json, /metrics snapshot, daemon log) are left
# in the workdir (default: ./loadgen-out) for CI upload.
set -eu

workdir=${1:-loadgen-out}
addr=127.0.0.1:8932
base="http://$addr"
key=loadgen-key
seed=20260808

# The fixed CI scenario. Offered load is deliberately modest for shared
# runners: the gate checks SLO bands, not peak throughput (see DESIGN.md
# "SLO methodology" for how the bands were chosen and re-recorded).
scenario="-seed $seed -rate 120 -duration 8s -inflight 64 \
    -fleet-genuine 24 -fleet-clones 8 -fleet-counterfeits 8 -key $key"

mkdir -p "$workdir"
go build -o "$workdir/fmverifyd" ./cmd/fmverifyd
go build -o "$workdir/fmloadgen" ./cmd/fmloadgen

"$workdir/fmloadgen" -version

# Reproducibility gate: the schedule is a pure function of the flags, so
# two plan-only runs must agree on the digest before anything is sent.
# shellcheck disable=SC2086
"$workdir/fmloadgen" $scenario -plan-only >"$workdir/plan_a.txt"
# shellcheck disable=SC2086
"$workdir/fmloadgen" $scenario -plan-only >"$workdir/plan_b.txt"
if ! cmp -s "$workdir/plan_a.txt" "$workdir/plan_b.txt"; then
    echo "FAIL: identical seeds produced different plans" >&2
    diff "$workdir/plan_a.txt" "$workdir/plan_b.txt" >&2 || true
    exit 1
fi
echo "plan determinism OK: $(cat "$workdir/plan_a.txt")"

"$workdir/fmverifyd" -addr "$addr" -key "$key" -registry-dir "$workdir/registry" \
    >"$workdir/fmverifyd.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT

i=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: daemon did not become healthy" >&2
        cat "$workdir/fmverifyd.log" >&2
        exit 1
    fi
    sleep 0.2
done

# shellcheck disable=SC2086
"$workdir/fmloadgen" $scenario -target "$base" -out "$workdir/BENCH_service.json"

# Server-side view of the same run, uploaded next to the client report.
curl -sf "$base/metrics" >"$workdir/metrics.txt"

kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "FAIL: daemon did not drain cleanly after the load run" >&2
    cat "$workdir/fmverifyd.log" >&2
    exit 1
fi
trap - EXIT

echo "loadgen scenario done (artifacts in $workdir)"
