#!/usr/bin/env sh
# Service-level SLO scenario: build fmverifyd and fmloadgen, prove the
# load schedule is reproducible (two -plan-only runs must print the same
# digest), and drive a live daemon with the fixed CI scenario. The
# measured BENCH_service.json is gated separately by
# `make loadgen-check` via scripts/check_bench.sh — the same
# measure-then-gate split the physics and registry benches use.
#
# Usage: scripts/loadgen_slo.sh [workdir]
# Artifacts (BENCH_service.json, /metrics snapshot, daemon log) are left
# in the workdir (default: ./loadgen-out) for CI upload.
set -eu

workdir=${1:-loadgen-out}
addr=127.0.0.1:8932
base="http://$addr"
key=loadgen-key
seed=20260808

# The fixed CI scenario. Offered load is deliberately modest for shared
# runners: the gate checks SLO bands, not peak throughput (see DESIGN.md
# "SLO methodology" for how the bands were chosen and re-recorded).
scenario="-seed $seed -rate 120 -duration 8s -inflight 64 \
    -fleet-genuine 24 -fleet-clones 8 -fleet-counterfeits 8 -key $key"

mkdir -p "$workdir"
go build -o "$workdir/fmverifyd" ./cmd/fmverifyd
go build -o "$workdir/fmloadgen" ./cmd/fmloadgen

"$workdir/fmloadgen" -version

# Reproducibility gate: the schedule is a pure function of the flags, so
# two plan-only runs must agree on the digest before anything is sent.
# shellcheck disable=SC2086
"$workdir/fmloadgen" $scenario -plan-only >"$workdir/plan_a.txt"
# shellcheck disable=SC2086
"$workdir/fmloadgen" $scenario -plan-only >"$workdir/plan_b.txt"
if ! cmp -s "$workdir/plan_a.txt" "$workdir/plan_b.txt"; then
    echo "FAIL: identical seeds produced different plans" >&2
    diff "$workdir/plan_a.txt" "$workdir/plan_b.txt" >&2 || true
    exit 1
fi
echo "plan determinism OK: $(cat "$workdir/plan_a.txt")"

"$workdir/fmverifyd" -addr "$addr" -key "$key" -registry-dir "$workdir/registry" \
    >"$workdir/fmverifyd.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT

i=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: daemon did not become healthy" >&2
        cat "$workdir/fmverifyd.log" >&2
        exit 1
    fi
    sleep 0.2
done

# shellcheck disable=SC2086
"$workdir/fmloadgen" $scenario -target "$base" -out "$workdir/BENCH_service.json"

# Server-side view of the same run, uploaded next to the client report.
curl -sf "$base/metrics" >"$workdir/metrics.txt"

kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "FAIL: daemon did not drain cleanly after the load run" >&2
    cat "$workdir/fmverifyd.log" >&2
    exit 1
fi
trap - EXIT

# Overdrive phase: a deliberately under-provisioned daemon (one worker,
# a queue of two, verdict cache off so every request is a real
# verification) is offered several times its capacity. The SLO here is
# about *failure shape*, not throughput: the excess must be shed with
# 429s (shed_429 > 0), shedding must not corrupt any response
# (http_errors == 0), and the requests that ARE admitted must stay fast
# (verify_p99_ms bounded) — a bounded queue keeps latency flat where an
# unbounded one would let the backlog poison every admitted request.
od_addr=127.0.0.1:8933
od_base="http://$od_addr"
"$workdir/fmverifyd" -addr "$od_addr" -key "$key" -workers 1 -queue 2 -cache -1 \
    -registry-dir "$workdir/registry-overdrive" \
    >"$workdir/fmverifyd_overdrive.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT

i=0
until curl -sf "$od_base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: overdrive daemon did not become healthy" >&2
        cat "$workdir/fmverifyd_overdrive.log" >&2
        exit 1
    fi
    sleep 0.2
done

"$workdir/fmloadgen" -seed "$seed" -rate 600 -duration 3s -inflight 128 \
    -fleet-genuine 24 -fleet-clones 8 -fleet-counterfeits 8 -key "$key" \
    -target "$od_base" -out "$workdir/BENCH_service_overdrive.json"

awk '
    function num(s) { gsub(/[^0-9.]/, "", s); return s + 0 }
    /"shed_429":/      { shed = num($2) }
    /"http_errors":/   { errs = num($2) }
    /"verify_p99_ms":/ { p99 = num($2) }
    END {
        fail = 0
        if (shed <= 0) { print "FAIL: overdrive shed no load (shed_429 = " shed ")"; fail = 1 }
        if (errs != 0) { print "FAIL: overdrive produced " errs " HTTP errors"; fail = 1 }
        if (p99 <= 0 || p99 >= 1500) { print "FAIL: admitted-request verify_p99_ms = " p99 " (want (0, 1500)): shed load polluted served latency"; fail = 1 }
        if (fail) { exit 1 }
        print "overdrive OK: shed_429 = " shed ", http_errors = 0, verify_p99_ms = " p99
    }
' "$workdir/BENCH_service_overdrive.json" || {
    cat "$workdir/BENCH_service_overdrive.json" >&2
    exit 1
}

kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "FAIL: overdrive daemon did not drain cleanly" >&2
    cat "$workdir/fmverifyd_overdrive.log" >&2
    exit 1
fi
trap - EXIT

# Cluster phase: the same clone storm through the distributed plane.
# Two fmregistryd shard primaries hold the fleet between them (die ids
# route by consistent hash, so victim and clone always share a shard
# while the fleet as a whole spans both), and a stateless fmverifyd
# fronts them with -cluster. The SLO is the detection floor: sharding
# the registry must not lose a single DUPLICATE-ID escalation, and both
# shards must end up holding keys — otherwise the ring routed everything
# to one node and the phase silently degenerated to single-node.
go build -o "$workdir/fmregistryd" ./cmd/fmregistryd

shard_a=127.0.0.1:8934
shard_b=127.0.0.1:8935
shard_a_metrics=127.0.0.1:8936
shard_b_metrics=127.0.0.1:8937
cl_addr=127.0.0.1:8938
cl_base="http://$cl_addr"

"$workdir/fmregistryd" -addr "$shard_a" -dir "$workdir/shard-a" \
    -metrics-addr "$shard_a_metrics" >"$workdir/fmregistryd_a.log" 2>&1 &
shard_a_pid=$!
"$workdir/fmregistryd" -addr "$shard_b" -dir "$workdir/shard-b" \
    -metrics-addr "$shard_b_metrics" >"$workdir/fmregistryd_b.log" 2>&1 &
shard_b_pid=$!
"$workdir/fmverifyd" -addr "$cl_addr" -key "$key" -cluster "$shard_a;$shard_b" \
    >"$workdir/fmverifyd_cluster.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" "$shard_a_pid" "$shard_b_pid" 2>/dev/null || true' EXIT

i=0
until curl -sf "$cl_base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: cluster-mode daemon did not become healthy" >&2
        cat "$workdir/fmverifyd_cluster.log" "$workdir/fmregistryd_a.log" "$workdir/fmregistryd_b.log" >&2
        exit 1
    fi
    sleep 0.2
done

# shellcheck disable=SC2086
"$workdir/fmloadgen" $scenario -target "$cl_base" -out "$workdir/BENCH_service_cluster.json"

awk '
    function num(s) { gsub(/[^0-9.]/, "", s); return s + 0 }
    /"duplicate_id_verdicts":/ { dups = num($2) }
    /"http_errors":/           { errs = num($2) }
    END {
        fail = 0
        if (dups < 1) { print "FAIL: cluster phase detected no duplicate ids (duplicate_id_verdicts = " dups ")"; fail = 1 }
        if (errs != 0) { print "FAIL: cluster phase produced " errs " HTTP errors"; fail = 1 }
        if (fail) { exit 1 }
        print "cluster detection OK: duplicate_id_verdicts = " dups ", http_errors = 0"
    }
' "$workdir/BENCH_service_cluster.json" || {
    cat "$workdir/BENCH_service_cluster.json" >&2
    exit 1
}

keys_a=$(curl -sf "http://$shard_a_metrics/metrics" | awk '/^fmregistry_keys/ { print $2 }')
keys_b=$(curl -sf "http://$shard_b_metrics/metrics" | awk '/^fmregistry_keys/ { print $2 }')
if [ "${keys_a:-0}" -lt 1 ] || [ "${keys_b:-0}" -lt 1 ]; then
    echo "FAIL: fleet did not spread across shards (shard A keys = ${keys_a:-0}, shard B keys = ${keys_b:-0})" >&2
    exit 1
fi
echo "cluster sharding OK: shard A holds $keys_a keys, shard B holds $keys_b"

kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "FAIL: cluster-mode daemon did not drain cleanly" >&2
    cat "$workdir/fmverifyd_cluster.log" >&2
    exit 1
fi
kill -TERM "$shard_a_pid" "$shard_b_pid"
wait "$shard_a_pid" "$shard_b_pid" || true
trap - EXIT

echo "loadgen scenario done (artifacts in $workdir)"
