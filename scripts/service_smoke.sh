#!/usr/bin/env sh
# End-to-end smoke of the verification service: build fmverifyd and the
# flashmark CLI, fabricate a genuine and a counterfeit chip file, start
# the daemon, screen both chips over HTTP (single and batch), assert the
# verdicts, snapshot /metrics, and check the SIGTERM drain exits cleanly.
#
# Usage: scripts/service_smoke.sh [workdir]
# Artifacts (chip files, responses, metrics snapshot, daemon log) are
# left in the workdir (default: ./smoke-out) for CI upload.
set -eu

workdir=${1:-smoke-out}
addr=127.0.0.1:8931
base="http://$addr"
key=smoke-test-key
mfg=TC

mkdir -p "$workdir"
go build -o "$workdir/fmverifyd" ./cmd/fmverifyd
go build -o "$workdir/flashmark" ./cmd/flashmark

"$workdir/fmverifyd" -version

# A genuine chip: fabricated, then watermarked the manufacturer way.
"$workdir/flashmark" new -chip "$workdir/genuine.chip" -part FM-SIM16 -seed 42
"$workdir/flashmark" imprint -chip "$workdir/genuine.chip" -mfg "$mfg" -die 1001 -status accept -key "$key"
# A counterfeit: a rebranded blank (no watermark imprinted).
"$workdir/flashmark" new -chip "$workdir/counterfeit.chip" -part FM-SIM16 -seed 77

"$workdir/fmverifyd" -addr "$addr" -key "$key" -mfg "$mfg" >"$workdir/fmverifyd.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT

# Wait for readiness.
i=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: daemon did not become healthy" >&2
        cat "$workdir/fmverifyd.log" >&2
        exit 1
    fi
    sleep 0.2
done

assert_contains() {
    if ! grep -q "$2" "$1"; then
        echo "FAIL: $1 does not contain $2" >&2
        cat "$1" >&2
        exit 1
    fi
}

curl -sf -X POST --data-binary @"$workdir/genuine.chip" "$base/v1/verify" \
    >"$workdir/verify_genuine.json"
assert_contains "$workdir/verify_genuine.json" '"verdict":"GENUINE"'
assert_contains "$workdir/verify_genuine.json" '"accepted":true'
assert_contains "$workdir/verify_genuine.json" '"dieId":1001'

curl -sf -X POST --data-binary @"$workdir/counterfeit.chip" "$base/v1/verify" \
    >"$workdir/verify_counterfeit.json"
assert_contains "$workdir/verify_counterfeit.json" '"verdict":"NO-WATERMARK"'
assert_contains "$workdir/verify_counterfeit.json" '"accepted":false'

# Batch: both chips in one request, indexed results plus a summary.
{
    printf '{"chips":['
    cat "$workdir/genuine.chip"
    printf ','
    cat "$workdir/counterfeit.chip"
    printf ']}'
} >"$workdir/batch.json"
curl -sf -X POST --data-binary @"$workdir/batch.json" "$base/v1/verify/batch" \
    >"$workdir/verify_batch.json"
assert_contains "$workdir/verify_batch.json" '"accepted":1'
assert_contains "$workdir/verify_batch.json" '"refused":1'
assert_contains "$workdir/verify_batch.json" '"GENUINE":1'
assert_contains "$workdir/verify_batch.json" '"NO-WATERMARK":1'

curl -sf "$base/metrics" >"$workdir/metrics.txt"
assert_contains "$workdir/metrics.txt" 'fmverifyd_requests_total 3'
assert_contains "$workdir/metrics.txt" 'fmverifyd_chips_total 4'
assert_contains "$workdir/metrics.txt" 'fmverifyd_verdict_genuine_total 2'

# Graceful drain: SIGTERM must exit 0 after in-flight work completes.
kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "FAIL: daemon did not drain cleanly on SIGTERM" >&2
    cat "$workdir/fmverifyd.log" >&2
    exit 1
fi
trap - EXIT

# ---- Fleet registry: enroll -> restart -> duplicate detection ----
# A replay-imprint clone: the same signed die id (1001) on a different
# physical chip (seed 88). Physics alone calls it GENUINE; the durable
# registry catches it — in a *later process lifetime* than the
# enrollment, which is the whole point of persistence.
"$workdir/flashmark" new -chip "$workdir/clone.chip" -part FM-SIM16 -seed 88
"$workdir/flashmark" imprint -chip "$workdir/clone.chip" -mfg "$mfg" -die 1001 -status accept -key "$key"

regdir="$workdir/registry"

wait_healthy() {
    i=0
    until curl -sf "$base/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "FAIL: daemon did not become healthy" >&2
            cat "$1" >&2
            exit 1
        fi
        sleep 0.2
    done
}

stop_daemon() {
    kill -TERM "$1"
    if ! wait "$1"; then
        echo "FAIL: daemon did not drain cleanly on SIGTERM" >&2
        cat "$2" >&2
        exit 1
    fi
}

# Lifetime 1: enroll the genuine chip's identity.
"$workdir/fmverifyd" -addr "$addr" -key "$key" -mfg "$mfg" -registry-dir "$regdir" \
    >"$workdir/fmverifyd_enroll.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT
wait_healthy "$workdir/fmverifyd_enroll.log"
curl -sf -X POST --data-binary @"$workdir/genuine.chip" "$base/v1/enroll?source=smoke" \
    >"$workdir/enroll_genuine.json"
assert_contains "$workdir/enroll_genuine.json" '"verdict":"GENUINE"'
assert_contains "$workdir/enroll_genuine.json" '"count":1'
assert_contains "$workdir/enroll_genuine.json" '"conflict":false'
stop_daemon "$daemon" "$workdir/fmverifyd_enroll.log"
trap - EXIT

# Lifetime 2: fresh process, same registry dir. The clone must be
# escalated to DUPLICATE-ID from recovered state alone.
"$workdir/fmverifyd" -addr "$addr" -key "$key" -mfg "$mfg" -registry-dir "$regdir" \
    >"$workdir/fmverifyd_restart.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT
wait_healthy "$workdir/fmverifyd_restart.log"
curl -sf -X POST --data-binary @"$workdir/clone.chip" "$base/v1/verify" \
    >"$workdir/verify_clone.json"
assert_contains "$workdir/verify_clone.json" '"verdict":"DUPLICATE-ID"'
assert_contains "$workdir/verify_clone.json" '"accepted":false'
assert_contains "$workdir/verify_clone.json" '"provenance"'
# The enrolled original still verifies clean after the restart.
curl -sf -X POST --data-binary @"$workdir/genuine.chip" "$base/v1/verify" \
    >"$workdir/verify_original_after_restart.json"
assert_contains "$workdir/verify_original_after_restart.json" '"verdict":"GENUINE"'

curl -sf "$base/metrics" >"$workdir/metrics_registry.txt"
assert_contains "$workdir/metrics_registry.txt" 'fmregistry_keys 1'
assert_contains "$workdir/metrics_registry.txt" 'fmverifyd_verdict_duplicate_id_total 1'
assert_contains "$workdir/metrics_registry.txt" 'fmverifyd_provenance_escalations_total 1'
stop_daemon "$daemon" "$workdir/fmverifyd_restart.log"
trap - EXIT

# ---- Challenge-response plane, on the ReRAM substrate ----
# Two ReRAM dies carry the same signed die id (2002): the original and
# a replay clone. With -challenge, enrollment records the original's
# response fingerprint; the clone then answers the challenge with its
# own process variation and is escalated to DUPLICATE-ID while the
# original reproduces its enrolled response.
"$workdir/flashmark" new -chip "$workdir/rram.chip" -backend reram -seed 31
"$workdir/flashmark" imprint -chip "$workdir/rram.chip" -mfg "$mfg" -die 2002 -status accept -key "$key"
"$workdir/flashmark" new -chip "$workdir/rram_clone.chip" -backend reram -seed 32
"$workdir/flashmark" imprint -chip "$workdir/rram_clone.chip" -mfg "$mfg" -die 2002 -status accept -key "$key"

"$workdir/fmverifyd" -addr "$addr" -key "$key" -mfg "$mfg" \
    -registry-dir "$workdir/registry-challenge" -challenge \
    >"$workdir/fmverifyd_challenge.log" 2>&1 &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT
wait_healthy "$workdir/fmverifyd_challenge.log"

curl -sf -X POST --data-binary @"$workdir/rram.chip" "$base/v1/enroll?source=smoke" \
    >"$workdir/enroll_rram.json"
assert_contains "$workdir/enroll_rram.json" '"verdict":"GENUINE"'
assert_contains "$workdir/enroll_rram.json" '"challengeFingerprint"'

curl -sf -X POST --data-binary @"$workdir/rram.chip" "$base/v1/challenge" \
    >"$workdir/challenge_rram.json"
assert_contains "$workdir/challenge_rram.json" '"verdict":"GENUINE"'
assert_contains "$workdir/challenge_rram.json" '"match":true'

curl -sf -X POST --data-binary @"$workdir/rram_clone.chip" "$base/v1/challenge" \
    >"$workdir/challenge_clone.json"
assert_contains "$workdir/challenge_clone.json" '"verdict":"DUPLICATE-ID"'
assert_contains "$workdir/challenge_clone.json" '"match":false'

curl -sf "$base/metrics" >"$workdir/metrics_challenge.txt"
assert_contains "$workdir/metrics_challenge.txt" 'fmverifyd_challenge_total 2'
assert_contains "$workdir/metrics_challenge.txt" 'fmverifyd_challenge_matches_total 1'
assert_contains "$workdir/metrics_challenge.txt" 'fmverifyd_challenge_mismatches_total 1'
stop_daemon "$daemon" "$workdir/fmverifyd_challenge.log"
trap - EXIT

echo "service smoke OK (artifacts in $workdir)"
