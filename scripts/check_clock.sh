#!/usr/bin/env sh
# Clock guardrail: no production code under internal/ may read the host
# wall clock directly. Direct time.Now()/time.Since() calls make service
# deadlines, latency accounting, and lease-style logic untestable without
# real sleeps; instead, packages take a Now func in their config
# defaulting to wallclock.Now (internal/wallclock is the one allowlisted
# reader). Device-side time is already virtual (internal/vclock) and is
# not affected by this check.
#
# Scope: internal/**/*.go plus the long-running daemons under cmd/
# (fmverifyd, fmregistryd — their deadline and replication timing must
# stay fixture-testable too), excluding _test.go files (tests may poll
# real time for timeouts) and the internal/wallclock seam itself.
#
# Usage: scripts/check_clock.sh [root]
set -eu

root=${1:-.}

violations=$(
    find "$root/internal" "$root/cmd/fmverifyd" "$root/cmd/fmregistryd" \
        -name '*.go' ! -name '*_test.go' \
        ! -path "$root/internal/wallclock/*" -print0 |
        xargs -0 grep -n 'time\.Now()\|time\.Since(' /dev/null |
        grep -v 'check_clock:allow' || true
)

if [ -n "$violations" ]; then
    echo "FAIL: direct wall-clock reads in internal/ (route them through a" >&2
    echo "config Now func defaulting to wallclock.Now; see internal/wallclock):" >&2
    echo "$violations" >&2
    exit 1
fi

# Sleeping is the write-side twin of reading the clock: a time.Sleep in
# production code stalls real wall time where the scenario engine
# (internal/scenario) needs every delay to be a virtual-clock advance,
# and it turns any test touching that path into a real-time wait.
# Back-off and delay logic must take its pauses from an injected timer
# or the vclock timeline, never the scheduler.
sleeps=$(
    find "$root/internal" "$root/cmd/fmverifyd" "$root/cmd/fmregistryd" \
        -name '*.go' ! -name '*_test.go' \
        ! -path "$root/internal/wallclock/*" -print0 |
        xargs -0 grep -n 'time\.Sleep(' /dev/null |
        grep -v 'check_clock:allow' || true
)

if [ -n "$sleeps" ]; then
    echo "FAIL: time.Sleep in internal/ production code (delays must come" >&2
    echo "from an injected timer or the virtual clock, not the scheduler):" >&2
    echo "$sleeps" >&2
    exit 1
fi

echo "clock guardrail OK (no direct time.Now/time.Since/time.Sleep under internal/ or the daemons)"
