#!/usr/bin/env sh
# Scenario determinism gate: replay the embedded corpus twice and demand
# byte-identical transcripts.
#
# Each fmscenario run already byte-diffs every transcript against its
# committed golden (internal/scenario/corpus/golden), so a single green
# run proves the corpus still produces exactly the recorded timelines.
# Running it twice — once at the default worker count, once serialized
# with -workers 1 — and diffing the two -out directories additionally
# proves the engine is deterministic under scheduling: no hidden wall
# clock, map-iteration order, or cross-scenario state can leak into a
# transcript, or the byte diff catches it.
#
# Usage: scripts/scenarios_check.sh [outdir]
#
# Artifacts left in outdir for CI upload: both transcript sets
# (run_parallel/, run_serial/) and the per-run logs.
set -eu

out=${1:-scenarios-out}
mkdir -p "$out"
rm -rf "$out/run_parallel" "$out/run_serial"

echo "== build fmscenario"
go build -o "$out/fmscenario" ./cmd/fmscenario

echo "== run 1: embedded corpus vs goldens (parallel workers)"
"$out/fmscenario" -out "$out/run_parallel" | tee "$out/run_parallel.log"

echo "== run 2: embedded corpus vs goldens (-workers 1)"
"$out/fmscenario" -workers 1 -out "$out/run_serial" | tee "$out/run_serial.log"

echo "== byte-diff the two transcript sets"
if ! diff -r "$out/run_parallel" "$out/run_serial"; then
    echo "FAIL: transcripts differ between parallel and serial runs" >&2
    exit 1
fi

count=$(ls "$out/run_parallel" | wc -l)
echo "scenarios gate OK ($count transcripts byte-identical across runs and golden-clean)"
