#!/usr/bin/env sh
# Coverage gate: fails when total statement coverage drops below the
# recorded baseline (scripts/coverage_baseline.txt). Raise the baseline
# when coverage durably improves; never lower it to make CI pass.
#
# Usage: scripts/check_coverage.sh [coverprofile]
set -eu

profile=${1:-coverage.out}
baseline=$(cat "$(dirname "$0")/coverage_baseline.txt")
total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $NF); print $NF}')

echo "total coverage: ${total}% (baseline: ${baseline}%)"
if ! awk -v t="$total" -v b="$baseline" 'BEGIN { exit (t + 0 >= b + 0) ? 0 : 1 }'; then
    echo "FAIL: coverage ${total}% fell below the recorded baseline ${baseline}%" >&2
    exit 1
fi
