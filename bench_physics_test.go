// Physics fast-path benchmarks: the batched segment-granularity cell
// physics (device.PhysicsFast) against the per-cell reference
// evaluation (device.PhysicsReference) on the three operations the
// paper's procedures spend their time in — segment erase cycles,
// verification extraction, and the Fig. 3/4 characterization sweep —
// plus an allocation check on the steady-state read path. With
// -physjson the results are also written as BENCH_physics.json (schema
// flashmark-bench-physics/v1), which CI gates against the checked-in
// baseline (scripts/bench_physics_baseline.json, ±20% on the ratios).
//
// Run: make bench-physics
// (equivalently: go test -run xxx -bench 'SegmentErase|Verify|SegmentCharacterize|SteadyStateRead' -benchtime 1x -physjson BENCH_physics.json .)
package flashmark_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	flashmark "github.com/flashmark/flashmark"
	"github.com/flashmark/flashmark/internal/device"
)

var physJSON = flag.String("physjson", "", "write physics fast-path benchmark results to this JSON file")

// physPair holds one benchmark measured on both physics paths. Speedup
// is reference time over fast time, so >1 means the fast path wins; the
// CI gate compares these ratios (not raw ns, which track the runner).
type physPair struct {
	FastNsOp      int64   `json:"fast_ns_op"`
	ReferenceNsOp int64   `json:"reference_ns_op"`
	Speedup       float64 `json:"speedup"`
}

// physRead is the steady-state read-path measurement. AllocsOp must be
// zero: the read path reuses the controller's decision cache and the
// pooled scratch buffers and never touches the heap once warm.
type physRead struct {
	NsOp     int64   `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// physReport is the BENCH_physics.json payload.
type physReport struct {
	Schema     string               `json:"schema"`
	GoMaxProcs int                  `json:"go_max_procs"`
	GoVersion  string               `json:"go_version"`
	Benches    map[string]*physPair `json:"benches"`
	Read       *physRead            `json:"read_steady_state,omitempty"`
}

var (
	physMu  sync.Mutex
	physOut = physReport{
		Schema:     "flashmark-bench-physics/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Benches:    map[string]*physPair{},
	}
)

// recordPhysPath stores one (bench, path) timing; the speedup ratio is
// filled in once both paths of a pair have reported.
func recordPhysPath(name string, p device.PhysicsPath, nsOp int64) {
	physMu.Lock()
	defer physMu.Unlock()
	pair := physOut.Benches[name]
	if pair == nil {
		pair = &physPair{}
		physOut.Benches[name] = pair
	}
	if p == device.PhysicsFast {
		pair.FastNsOp = nsOp
	} else {
		pair.ReferenceNsOp = nsOp
	}
	if pair.FastNsOp > 0 && pair.ReferenceNsOp > 0 {
		pair.Speedup = float64(pair.ReferenceNsOp) / float64(pair.FastNsOp)
	}
}

func recordPhysRead(nsOp int64, allocs float64) {
	physMu.Lock()
	defer physMu.Unlock()
	physOut.Read = &physRead{NsOp: nsOp, AllocsOp: allocs}
}

// writePhysReport emits BENCH_physics.json when -physjson was given and
// at least one physics benchmark actually ran.
func writePhysReport() error {
	physMu.Lock()
	defer physMu.Unlock()
	if *physJSON == "" || (len(physOut.Benches) == 0 && physOut.Read == nil) {
		return nil
	}
	data, err := json.MarshalIndent(physOut, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*physJSON, append(data, '\n'), 0o644)
}

// TestMain exists only to flush the physics bench report after all
// benchmarks (which may record from several top-level functions) have
// finished; it is a no-op for plain test runs.
func TestMain(m *testing.M) {
	code := m.Run()
	if err := writePhysReport(); err != nil {
		os.Stderr.WriteString("physjson: " + err.Error() + "\n")
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

var physPaths = []device.PhysicsPath{device.PhysicsFast, device.PhysicsReference}

// physDevice opens a small-sim device pinned to the given physics path.
func physDevice(b *testing.B, seed uint64, p device.PhysicsPath) flashmark.Device {
	b.Helper()
	dev := mustDevice(b, seed)
	if err := device.SetPhysicsPath(dev, p); err != nil {
		b.Fatal(err)
	}
	return dev
}

// physNsOp converts the benchmark's own measurement into ns/op for the
// JSON report, so the numbers match what `go test -bench` prints.
func physNsOp(b *testing.B) int64 {
	if b.N == 0 {
		return 0
	}
	return b.Elapsed().Nanoseconds() / int64(b.N)
}

// BenchmarkSegmentErase measures one program + adaptive-erase cycle of
// a worn 4,096-cell segment — the inner loop of imprinting, where the
// fast path batches tau evaluation over the whole contiguous span.
func BenchmarkSegmentErase(b *testing.B) {
	for _, p := range physPaths {
		b.Run(string(p), func(b *testing.B) {
			dev := physDevice(b, 0xE5E1, p)
			zeros := make([]uint64, dev.Geometry().WordsPerSegment())
			mustImprint(b, dev, zeros, 20_000)
			if err := dev.Unlock(); err != nil {
				b.Fatal(err)
			}
			// One warmup cycle so the timed iterations measure the
			// steady state, not the one-time base/tau cache build.
			if err := dev.ProgramBlock(0, zeros); err != nil {
				b.Fatal(err)
			}
			if _, err := dev.EraseSegmentAdaptive(0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dev.ProgramBlock(0, zeros); err != nil {
					b.Fatal(err)
				}
				if _, err := dev.EraseSegmentAdaptive(0); err != nil {
					b.Fatal(err)
				}
			}
			recordPhysPath("segment_erase", p, physNsOp(b))
		})
	}
}

// BenchmarkVerify measures one full verification extraction (partial
// erase + 3 majority reads) of an imprinted segment.
func BenchmarkVerify(b *testing.B) {
	for _, p := range physPaths {
		b.Run(string(p), func(b *testing.B) {
			dev := physDevice(b, 0xE5E2, p)
			wm := flashmark.ReferenceWatermark(dev.Geometry().WordsPerSegment())
			mustImprint(b, dev, wm, 40_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{
					TPEW: 25 * time.Microsecond, Reads: 3,
				}); err != nil {
					b.Fatal(err)
				}
			}
			recordPhysPath("verify", p, physNsOp(b))
		})
	}
}

// BenchmarkSegmentCharacterize measures one full Fig. 3/4
// characterization sweep of a 20 K-cycle segment on each physics path —
// the headline number for the batched physics (acceptance: fast is at
// least 3x reference; the deferred-margin engine measures ~5x here).
func BenchmarkSegmentCharacterize(b *testing.B) {
	for _, p := range physPaths {
		b.Run(string(p), func(b *testing.B) {
			dev := physDevice(b, 0xB401, p)
			zeros := make([]uint64, dev.Geometry().WordsPerSegment())
			mustImprint(b, dev, zeros, 20_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				points, err := flashmark.Characterize(dev, 0, flashmark.CharacterizeOptions{Step: 4 * time.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := flashmark.AllErasedTime(points); !ok {
					b.Fatal("sweep did not complete")
				}
			}
			recordPhysPath("characterize", p, physNsOp(b))
		})
	}
}

// BenchmarkSteadyStateRead measures repeated whole-segment word reads
// on the fast path once every cache is warm. The acceptance criterion
// is 0 allocs/op: reads hit the controller's conclusive-decision cache
// and the pooled scratch buffers, never the heap.
func BenchmarkSteadyStateRead(b *testing.B) {
	dev := physDevice(b, 0xE5E4, device.PhysicsFast)
	geom := dev.Geometry()
	wm := flashmark.ReferenceWatermark(geom.WordsPerSegment())
	mustImprint(b, dev, wm, 40_000)
	readSegment := func() {
		for addr := 0; addr < geom.SegmentBytes; addr += geom.WordBytes {
			if _, err := dev.ReadWord(addr); err != nil {
				b.Fatal(err)
			}
		}
	}
	readSegment() // warm the margin materialization and decision cache
	allocs := testing.AllocsPerRun(10, readSegment)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readSegment()
	}
	nsOp := physNsOp(b)
	if b.N > 0 {
		nsOp /= int64(geom.WordsPerSegment()) // per word, the unit that must stay alloc-free
	}
	b.ReportMetric(allocs, "allocs/segment")
	recordPhysRead(nsOp, allocs)
}
