GO ?= go
BENCHTIME ?= 1x

.PHONY: all build vet test race bench bench-json bench-physics bench-physics-check bench-registry bench-registry-check bench-hotpath bench-hotpath-check loadgen loadgen-check experiments smoke cluster-smoke scenarios-check cover cover-check fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Runs the serial-vs-parallel experiment-suite benchmark and writes the
# timings to BENCH_experiments.json (schema flashmark-bench-experiments/v1).
# CI runs this at BENCHTIME=1x and uploads the JSON as an artifact.
bench-json:
	$(GO) test -run xxx -bench BenchmarkExperimentSuite -benchtime $(BENCHTIME) -benchjson BENCH_experiments.json .

# Physics fast-path benchmarks: batched vs per-cell reference physics
# on segment erase, verification extraction and the Fig. 4
# characterization sweep, plus the 0-alloc steady-state read check.
# Writes BENCH_physics.json (schema flashmark-bench-physics/v1).
bench-physics:
	$(GO) test -run xxx -bench 'BenchmarkSegmentErase|BenchmarkVerify|BenchmarkSegmentCharacterize|BenchmarkSteadyStateRead' -benchtime $(BENCHTIME) -physjson BENCH_physics.json .

# Bench-regression gate: re-measure and compare the speedup ratios and
# read-path allocs against scripts/bench_physics_baseline.json (±20%).
bench-physics-check: bench-physics
	./scripts/check_bench.sh BENCH_physics.json

# Registry benchmarks: fleet-scale lookup against 1M enrolled ids
# (acceptance: sub-microsecond, zero allocations) and durable
# group-commit enrollment. Writes BENCH_registry.json (schema
# flashmark-bench-registry/v1). The package path must precede the
# -regjson flag or `go test` stops parsing the package list.
bench-registry:
	$(GO) test ./internal/registry/ -run xxx -bench 'BenchmarkRegistryLookup|BenchmarkRegistryEnroll' -benchtime 10000x -regjson $(CURDIR)/BENCH_registry.json

# Registry acceptance gate: lookup must stay allocation-free and under
# the scripts/bench_registry_baseline.json ns ceiling at 1M keys.
bench-registry-check: bench-registry
	./scripts/check_bench.sh BENCH_registry.json

# Verify hot-path benchmark: the full /v1/verify request lifecycle
# (mux -> admission -> body read -> sniff -> load -> physics verify ->
# encode) measured single-core through the real handler, cache-miss and
# cache-hit. Writes BENCH_hotpath.json (schema
# flashmark-bench-hotpath/v1). The package path must precede the
# -hotjson flag or `go test` stops parsing the package list.
bench-hotpath:
	$(GO) test ./internal/service/ -run xxx -bench BenchmarkVerifyHotPath -benchtime 50x -hotjson $(CURDIR)/BENCH_hotpath.json

# Hot-path acceptance gate: allocs/op must stay under the hard ceilings
# in scripts/bench_hotpath_baseline.json on both paths, and the miss
# path must clear the loose chips/sec floor.
bench-hotpath-check: bench-hotpath
	./scripts/check_bench.sh BENCH_hotpath.json

# Synthetic-fleet load scenario: prove the schedule is reproducible,
# start fmverifyd, drive it with the fixed Poisson workload (genuine
# chips, replay-imprint clones, counterfeits), and write
# loadgen-out/BENCH_service.json (schema flashmark-bench-service/v1)
# plus a /metrics snapshot and the daemon log.
loadgen:
	./scripts/loadgen_slo.sh loadgen-out

# Service SLO gate: the measured verify percentiles, throughput, shed
# rate, and DUPLICATE-ID detection must stay inside the bands in
# scripts/bench_service_baseline.json.
loadgen-check: loadgen
	./scripts/check_bench.sh loadgen-out/BENCH_service.json

experiments:
	$(GO) run ./cmd/fmexperiments -run all

# End-to-end smoke of fmverifyd: build, fabricate chips, verify over
# HTTP, assert verdicts and metrics, check the SIGTERM drain.
smoke:
	./scripts/service_smoke.sh smoke-out

# End-to-end smoke of the distributed plane: a replicated registry
# shard behind fmverifyd -cluster; enroll, SIGKILL the primary, fail
# over, and catch the clone as DUPLICATE-ID.
cluster-smoke:
	./scripts/cluster_smoke.sh cluster-smoke-out

# Scenario determinism gate: replay the embedded supply-chain corpus
# twice (parallel workers, then -workers 1), byte-diff every transcript
# against its committed golden and the two runs against each other.
# Catches any wall-clock, map-order, or cross-scenario state leak.
scenarios-check:
	./scripts/scenarios_check.sh scenarios-out

cover:
	$(GO) test -cover ./...

# Coverage gate: recompute total statement coverage and fail if it fell
# below scripts/coverage_baseline.txt.
cover-check:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	./scripts/check_coverage.sh coverage.out

clean:
	$(GO) clean ./...
