GO ?= go

.PHONY: all build vet test race bench experiments cover fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

experiments:
	$(GO) run ./cmd/fmexperiments -run all

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
