package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runToFile executes the command with stdout captured into a temp file.
func runToFile(t *testing.T, args ...string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rerr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), rerr
}

func TestListExperiments(t *testing.T) {
	out, err := runToFile(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig9", "fig10", "fig11", "timing", "supplychain", "retention"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := runToFile(t, "-run", "fig6", "-fast")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Imprinting a watermark into a flash word") {
		t.Errorf("fig6 output missing: %q", out)
	}
}

func TestRunWithCSV(t *testing.T) {
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "csv")
	if _, err := runToFile(t, "-run", "fig6", "-fast", "-csv", csvDir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(csvDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files written")
	}
	data, err := os.ReadFile(filepath.Join(csvDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ",") {
		t.Errorf("CSV content: %q", string(data))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := runToFile(t, "-run", "fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadPart(t *testing.T) {
	if _, err := runToFile(t, "-part", "Z80", "-run", "fig6"); err == nil {
		t.Error("unknown part accepted")
	}
}

func TestRunWithMarkdown(t *testing.T) {
	dir := t.TempDir()
	mdDir := filepath.Join(dir, "md")
	if _, err := runToFile(t, "-run", "fig6", "-fast", "-md", mdDir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(mdDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no markdown files: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(mdDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "| --- |") {
		t.Errorf("markdown content: %q", string(data))
	}
}
