// Command fmexperiments regenerates the paper's tables and figures
// against the simulated substrate.
//
// Usage:
//
//	fmexperiments -run all                 # every experiment, text output
//	fmexperiments -run fig9 -fast          # one experiment, reduced sweep
//	fmexperiments -run all -csv out/       # also write each table as CSV
//	fmexperiments -run all -parallel 8     # bound the device fan-out
//	fmexperiments -run all -timing         # per-experiment wall-clock on stderr
//	fmexperiments -list                    # list experiment ids
//
// Experiment ids map to the paper's artifacts: fig4 fig5 fig6 fig9 fig10
// fig11 timing supplychain (see DESIGN.md for the index).
//
// Artifact output is byte-identical for every -parallel value (devices
// are independent deterministic simulations assembled by index); the
// knob only changes wall-clock time. -timing writes to stderr so timed
// runs stay byte-comparable on stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/flashmark/flashmark/internal/buildinfo"
	"github.com/flashmark/flashmark/internal/experiment"
	"github.com/flashmark/flashmark/internal/mcu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fmexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("fmexperiments", flag.ContinueOnError)
	var (
		runIDs   = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		fast     = fs.Bool("fast", false, "reduced sweep resolution (quick look)")
		seed     = fs.Uint64("seed", 0, "base chip seed (0 = fixed default)")
		partName = fs.String("part", "FM-SIM16", "simulated part (FM-SIM16, MSP430F5438, MSP430F5529)")
		csvDir   = fs.String("csv", "", "directory to write per-table CSV files")
		mdDir    = fs.String("md", "", "directory to write per-table Markdown files")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		workers  = fs.Int("parallel", 0, "max devices simulated concurrently (0 = GOMAXPROCS, 1 = serial)")
		timing   = fs.Bool("timing", false, "print per-experiment wall-clock to stderr")
		version  = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("fmexperiments"))
		return nil
	}
	if *list {
		for _, id := range experiment.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	part, err := mcu.PartByName(*partName)
	if err != nil {
		return err
	}
	cfg := experiment.Config{Part: part, Seed: *seed, Fast: *fast, Workers: *workers}

	ids := experiment.IDs()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
	}
	for _, dir := range []string{*csvDir, *mdDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}
	suiteStart := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fmt.Fprintf(out, "running %s...\n", id)
		expStart := time.Now()
		artifact, err := experiment.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "timing: %-12s %10.3fs\n", id, time.Since(expStart).Seconds())
		}
		if err := artifact.WriteText(out); err != nil {
			return err
		}
		if *csvDir != "" {
			for i := range artifact.Tables {
				if err := writeTable(filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", id, i)), artifact.Tables[i].WriteCSV); err != nil {
					return err
				}
			}
		}
		if *mdDir != "" {
			for i := range artifact.Tables {
				if err := writeTable(filepath.Join(*mdDir, fmt.Sprintf("%s_%d.md", id, i)), artifact.Tables[i].WriteMarkdown); err != nil {
					return err
				}
			}
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "timing: %-12s %10.3fs (parallel=%d)\n", "TOTAL", time.Since(suiteStart).Seconds(), *workers)
	}
	return nil
}

// writeTable writes one table rendering to a file.
func writeTable(path string, render func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := render(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
