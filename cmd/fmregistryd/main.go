// Command fmregistryd serves one shard of the distributed fleet
// registry: a registry.Durable behind the cluster wire protocol.
// Run as a primary it accepts enrollments and synchronously replicates
// every record to its follower before acknowledging; run as a follower
// it applies the primary's stream, serves reads, and can be promoted
// to primary at runtime (deterministic failover). A primary whose
// required follower link is down refuses enrollments — fencing — so an
// acknowledged record always exists on both nodes' disks.
//
// Usage:
//
//	fmregistryd -addr :8910 -dir /var/lib/fmregistry/a
//	fmregistryd -addr :8910 -dir ... -follower 10.0.0.2:8910
//	fmregistryd -addr :8910 -dir ... -role follower
//	fmregistryd -version
//
// With -metrics-addr the daemon exposes GET /metrics (Prometheus text),
// /debug/vars and /healthz on a separate HTTP listener, including the
// fmregistry_wal_segments and fmregistry_last_compaction_gen gauges
// that watch compaction health.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/flashmark/flashmark/internal/buildinfo"
	"github.com/flashmark/flashmark/internal/cluster"
	"github.com/flashmark/flashmark/internal/metrics"
	"github.com/flashmark/flashmark/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fmregistryd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fmregistryd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8910", "listen address for the registry wire protocol")
		dir        = fs.String("dir", "", "directory for the durable registry (required)")
		role       = fs.String("role", "primary", "node role: primary or follower")
		follower   = fs.String("follower", "", "follower address this primary replicates to")
		requireFol = fs.Bool("require-follower", true, "fence enrollments while the follower link is down (only meaningful with -follower)")
		metricsAt  = fs.String("metrics-addr", "", "separate HTTP listen address for /metrics, /debug/vars and /healthz (empty disables)")
		shards     = fs.Int("shards", 0, "registry index lock stripes (0 selects the default)")
		compactN   = fs.Int("compact-every", 0, "snapshot compaction threshold in WAL records (0 selects the default)")
		timeout    = fs.Duration("timeout", 0, "replication round-trip bound (0 selects 5s)")
		version    = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("fmregistryd"))
		return nil
	}
	if *dir == "" {
		return errors.New("-dir is required (the durable registry directory)")
	}
	var nodeRole cluster.Role
	switch *role {
	case "primary":
		nodeRole = cluster.RolePrimary
	case "follower":
		nodeRole = cluster.RoleFollower
		if *follower != "" {
			return errors.New("-follower is for primaries; a follower does not replicate onward")
		}
	default:
		return fmt.Errorf("unknown -role %q (want primary or follower)", *role)
	}

	logger := log.New(os.Stderr, "fmregistryd: ", log.LstdFlags)
	store, err := registry.Open(*dir, registry.Options{Shards: *shards, CompactEvery: *compactN})
	if err != nil {
		return fmt.Errorf("opening registry %s: %w", *dir, err)
	}
	defer store.Close()
	st := store.Stats()
	logger.Printf("registry %s: %d identities (%d conflicted) recovered in %v",
		*dir, st.Keys, st.Conflicts, st.Recovery.Round(time.Millisecond))

	node, err := cluster.NewNode(cluster.NodeConfig{
		Store:           store,
		Role:            nodeRole,
		FollowerAddr:    *follower,
		RequireFollower: *requireFol,
		Timeout:         *timeout,
		Logf:            logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("%s listening on %s", *role, ln.Addr())
		errc <- node.Serve(ln)
	}()

	var metricsSrv *http.Server
	if *metricsAt != "" {
		metricsSrv = &http.Server{
			Addr:              *metricsAt,
			Handler:           metricsMux(store, node),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Printf("metrics listening on %s", *metricsAt)
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		node.Close()
		return err
	case s := <-sig:
		logger.Printf("%s received, shutting down", s)
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if err := node.Close(); err != nil {
		return err
	}
	if err := store.Close(); err != nil {
		return err
	}
	logger.Printf("shut down cleanly")
	return nil
}

// metricsMux exposes the shard's registry counters and replication
// health on a mux of its own.
func metricsMux(store *registry.Durable, node *cluster.Node) *http.ServeMux {
	reg := metrics.NewRegistry()
	reg.GaugeFunc("fmregistry_keys", "distinct die identities on file",
		func() int64 { return store.Stats().Keys })
	reg.GaugeFunc("fmregistry_enrollments", "enrollments applied, duplicates included",
		func() int64 { return store.Stats().Enrollments })
	reg.GaugeFunc("fmregistry_conflicts", "die identities claimed by multiple physical fingerprints",
		func() int64 { return store.Stats().Conflicts })
	reg.GaugeFunc("fmregistry_lookups", "registry lookups served",
		func() int64 { return store.Stats().Lookups })
	reg.GaugeFunc("fmregistry_wal_appends_total", "records appended to the registry WAL",
		func() int64 { return store.Stats().WALAppends })
	reg.GaugeFunc("fmregistry_wal_fsyncs_total", "fsyncs of the registry WAL (group commit batches these)",
		func() int64 { return store.Stats().WALFsyncs })
	reg.GaugeFunc("fmregistry_wal_segments", "WAL generation files on disk (growth with flat compactions means compaction is failing)",
		func() int64 { return store.Stats().WALSegments })
	reg.GaugeFunc("fmregistry_compactions_total", "registry snapshot compactions completed",
		func() int64 { return store.Stats().Compactions })
	reg.GaugeFunc("fmregistry_last_compaction_gen", "generation of the newest on-disk snapshot (0 = never compacted)",
		func() int64 { return int64(store.Stats().LastCompaction) })
	reg.GaugeFunc("fmregistry_recovery_us", "microseconds the last Open spent rebuilding registry state",
		func() int64 { return store.Stats().Recovery.Microseconds() })
	reg.GaugeFunc("fmcluster_is_primary", "1 when this node serves as primary",
		func() int64 {
			if node.Role() == cluster.RolePrimary {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("fmcluster_follower_link_up", "1 when the replication link to the follower is established",
		func() int64 {
			if node.LinkUp() {
				return 1
			}
			return 0
		})
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", reg.VarsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
