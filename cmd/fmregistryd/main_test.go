package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/registry"
)

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "fmregistryd ") {
		t.Fatalf("banner %q", out.String())
	}
}

func TestRunRequiresDir(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Fatalf("missing dir must fail with a -dir hint, got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestRunRejectsUnknownRole(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dir", t.TempDir(), "-role", "arbiter"}, &out)
	if err == nil || !strings.Contains(err.Error(), "arbiter") {
		t.Fatalf("unknown role must fail naming it, got %v", err)
	}
}

func TestRunRejectsFollowerWithFollowerFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dir", t.TempDir(), "-role", "follower", "-follower", "10.0.0.2:8910"}, &out)
	if err == nil || !strings.Contains(err.Error(), "follower") {
		t.Fatalf("follower chaining must be rejected, got %v", err)
	}
}

func TestRunRejectsUnopenableDir(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "registry")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-dir", blocker}, &out)
	if err == nil || !strings.Contains(err.Error(), "registry") {
		t.Fatalf("unopenable dir must fail with context, got %v", err)
	}
}

// freePort reserves a loopback port long enough to hand its address to
// a daemon under test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunLifecycle boots the daemon for real — wire listener, metrics
// listener, one enrollment over the wire protocol — then delivers
// SIGTERM and requires a clean (nil-error) shutdown.
func TestRunLifecycle(t *testing.T) {
	addr := freePort(t)
	maddr := freePort(t)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- run([]string{"-addr", addr, "-dir", t.TempDir(), "-metrics-addr", maddr}, &out)
	}()

	rc := registry.NewRemote(addr, registry.RemoteOptions{Timeout: time.Second})
	defer rc.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := rc.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never answered a ping")
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, err := rc.Enroll(registry.Enrollment{
		Key:       registry.Key{Manufacturer: "TC", DieID: 4242},
		Source:    "lifecycle-test",
		UnixMicro: 1722470400000000,
	})
	if err != nil || res.Count != 1 {
		t.Fatalf("enroll over the wire: %+v err %v", res, err)
	}

	mresp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatalf("metrics listener: %v", err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "fmregistry_keys 1") {
		t.Fatalf("metrics missing the enrolled key:\n%s", body)
	}
	if hresp, err := http.Get("http://" + maddr + "/healthz"); err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hresp, err)
	} else {
		hresp.Body.Close()
	}

	time.Sleep(200 * time.Millisecond) // signal handler is installed after the listeners
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}
