package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "fmregistryd ") {
		t.Fatalf("banner %q", out.String())
	}
}

func TestRunRequiresDir(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Fatalf("missing dir must fail with a -dir hint, got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestRunRejectsUnknownRole(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dir", t.TempDir(), "-role", "arbiter"}, &out)
	if err == nil || !strings.Contains(err.Error(), "arbiter") {
		t.Fatalf("unknown role must fail naming it, got %v", err)
	}
}

func TestRunRejectsFollowerWithFollowerFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dir", t.TempDir(), "-role", "follower", "-follower", "10.0.0.2:8910"}, &out)
	if err == nil || !strings.Contains(err.Error(), "follower") {
		t.Fatalf("follower chaining must be rejected, got %v", err)
	}
}

func TestRunRejectsUnopenableDir(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "registry")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-dir", blocker}, &out)
	if err == nil || !strings.Contains(err.Error(), "registry") {
		t.Fatalf("unopenable dir must fail with context, got %v", err)
	}
}
