package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "fmverifyd ") {
		t.Fatalf("banner %q", out.String())
	}
}

func TestRunRequiresKey(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "-key") {
		t.Fatalf("missing key must fail with a -key hint, got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag must fail")
	}
}
