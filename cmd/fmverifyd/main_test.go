package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "fmverifyd ") {
		t.Fatalf("banner %q", out.String())
	}
}

func TestRunRequiresKey(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "-key") {
		t.Fatalf("missing key must fail with a -key hint, got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestRunRejectsUnopenableRegistry(t *testing.T) {
	// A file where the registry directory should be: Open must fail and
	// run must surface it instead of serving without durability.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "registry")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-key", "k", "-registry-dir", blocker}, &out)
	if err == nil || !strings.Contains(err.Error(), "registry") {
		t.Fatalf("unopenable registry dir must fail with context, got %v", err)
	}
}

func TestPprofMuxSurface(t *testing.T) {
	mux := pprofMux()
	// The index and the fixed-name profiles answer; anything outside
	// /debug/pprof/ does not exist on the profiling listener.
	for path, want := range map[string]int{
		"/debug/pprof/":          http.StatusOK,
		"/debug/pprof/cmdline":   http.StatusOK,
		"/debug/pprof/symbol":    http.StatusOK,
		"/debug/pprof/goroutine": http.StatusOK,
		"/v1/verify":             http.StatusNotFound,
		"/metrics":               http.StatusNotFound,
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != want {
			t.Errorf("GET %s = %d, want %d", path, rec.Code, want)
		}
	}
}

func TestRunRejectsCorruptRegistry(t *testing.T) {
	dir := t.TempDir()
	// A snapshot that was "atomically renamed" but is garbage: the
	// store must refuse to open rather than serve partial state.
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000001.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-key", "k", "-registry-dir", dir}, &out)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt registry must fail loudly, got %v", err)
	}
}
