package main

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "fmverifyd ") {
		t.Fatalf("banner %q", out.String())
	}
}

func TestRunRequiresKey(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "-key") {
		t.Fatalf("missing key must fail with a -key hint, got %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestRunRejectsUnopenableRegistry(t *testing.T) {
	// A file where the registry directory should be: Open must fail and
	// run must surface it instead of serving without durability.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "registry")
	if err := os.WriteFile(blocker, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-key", "k", "-registry-dir", blocker}, &out)
	if err == nil || !strings.Contains(err.Error(), "registry") {
		t.Fatalf("unopenable registry dir must fail with context, got %v", err)
	}
}

func TestPprofMuxSurface(t *testing.T) {
	mux := pprofMux()
	// The index and the fixed-name profiles answer; anything outside
	// /debug/pprof/ does not exist on the profiling listener.
	for path, want := range map[string]int{
		"/debug/pprof/":          http.StatusOK,
		"/debug/pprof/cmdline":   http.StatusOK,
		"/debug/pprof/symbol":    http.StatusOK,
		"/debug/pprof/goroutine": http.StatusOK,
		"/v1/verify":             http.StatusNotFound,
		"/metrics":               http.StatusNotFound,
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != want {
			t.Errorf("GET %s = %d, want %d", path, rec.Code, want)
		}
	}
}

func TestRunRejectsCorruptRegistry(t *testing.T) {
	dir := t.TempDir()
	// A snapshot that was "atomically renamed" but is garbage: the
	// store must refuse to open rather than serve partial state.
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000001.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-key", "k", "-registry-dir", dir}, &out)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt registry must fail loudly, got %v", err)
	}
}

func TestRunFlagConflicts(t *testing.T) {
	cases := map[string]struct {
		args []string
		want string
	}{
		"registry-and-cluster": {
			[]string{"-key", "k", "-registry-dir", "x", "-cluster", "127.0.0.1:1"},
			"mutually exclusive",
		},
		"challenge-without-registry": {
			[]string{"-key", "k", "-challenge"},
			"-challenge requires a registry",
		},
		"nonce-without-challenge": {
			[]string{"-key", "k", "-challenge-nonce", "7"},
			"no effect without -challenge",
		},
		"bad-cluster-spec": {
			[]string{"-key", "k", "-cluster", ";;;"},
			"cluster",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// freePort reserves a loopback port long enough to hand its address to
// the daemon under test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunLifecycle boots the daemon for real — service listener with a
// durable registry and the challenge plane, plus the pprof listener —
// then delivers SIGTERM and requires a clean drain.
func TestRunLifecycle(t *testing.T) {
	addr := freePort(t)
	paddr := freePort(t)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- run([]string{
			"-addr", addr, "-key", "lifecycle-key",
			"-registry-dir", t.TempDir(), "-challenge", "-challenge-nonce", "7",
			"-pprof-addr", paddr,
		}, &out)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The challenge plane is routed (405 for GET, not 404).
	resp, err := http.Get("http://" + addr + "/v1/challenge")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/challenge = %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
	}

	time.Sleep(200 * time.Millisecond) // signal handler is installed after the listeners
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain on SIGTERM")
	}
}
