// Command fmverifyd serves watermark verification over HTTP: clients
// POST serialized chip files (either backend's format) and receive
// authenticity verdicts as JSON. The daemon is the service-mode
// counterpart to `flashmark verify` — same verifier policy, but with
// the production concerns a procurement line needs: bounded admission
// (429 + Retry-After under overload), per-request deadlines, a
// chip-registry cache keyed by content hash, Prometheus-style metrics,
// and graceful drain on SIGTERM.
//
// Usage:
//
//	fmverifyd -addr :8900 -key secret -mfg TC
//	fmverifyd -addr :8900 -key secret -workers 8 -queue 128 -timeout 10s
//	fmverifyd -addr :8900 -key secret -registry-dir /var/lib/fmverifyd/registry
//	fmverifyd -addr :8900 -key secret -registry-dir /var/lib/fmverifyd/registry -challenge
//	fmverifyd -addr :8900 -key secret -cluster "10.0.0.1:8910,10.0.0.2:8910;10.0.1.1:8910,10.0.1.2:8910"
//	fmverifyd -version
//
// With -registry-dir the daemon keeps a durable fleet-scale provenance
// registry (internal/registry): POST /v1/enroll records verified die
// identities, and the verify endpoints escalate a physics-GENUINE chip
// to DUPLICATE-ID when its die id is already enrolled by a different
// physical chip — across batches and across restarts.
//
// With -cluster the registry lives in a sharded fmregistryd plane
// instead: die identities are routed to shards by consistent hashing,
// batch verifies fan lookups out across shards, and the daemon itself
// stays stateless — any number of fmverifyd replicas can front the same
// cluster.
//
// With -challenge (requires a registry) the daemon additionally runs
// the challenge-response plane (internal/challenge): enrollment records
// each chip's response fingerprint, and POST /v1/challenge escalates a
// chip whose die answers the challenge differently than enrolled — the
// second identity axis that catches replay-imprint clones physics
// verification alone cannot.
//
// Endpoints: POST /v1/verify, POST /v1/verify/batch, POST /v1/enroll,
// POST /v1/challenge, GET /healthz, GET /readyz, GET /metrics,
// GET /debug/vars.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/flashmark/flashmark/internal/buildinfo"
	"github.com/flashmark/flashmark/internal/challenge"
	"github.com/flashmark/flashmark/internal/cluster"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/service"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fmverifyd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fmverifyd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8900", "listen address")
		key      = fs.String("key", "", "watermark HMAC key (required)")
		mfg      = fs.String("mfg", "", "expected manufacturer string (empty skips the identity check)")
		tpew     = fs.Duration("tpew", 0, "partial-erase pulse width (0 selects the verifier default)")
		replicas = fs.Int("replicas", 0, "watermark replica count (0 selects the verifier default)")
		segment  = fs.Int("segment", 0, "watermark segment byte address")
		recycle  = fs.Bool("recycling-screen", true, "enable the data-segment wear screen")
		workers  = fs.Int("workers", 0, "concurrent verifications (0 selects GOMAXPROCS)")
		queue    = fs.Int("queue", 0, "admission queue depth beyond workers (0 selects 64)")
		timeout  = fs.Duration("timeout", 0, "per-request verification deadline (0 selects 30s)")
		cache    = fs.Int("cache", 0, "chip-registry cache entries (0 selects 4096, negative disables)")
		maxBody  = fs.Int64("max-body", 0, "request body cap in bytes (0 selects 16 MiB)")
		drainFor = fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight work on shutdown")
		regDir   = fs.String("registry-dir", "", "directory for the durable provenance registry (empty disables /v1/enroll and DUPLICATE-ID escalation)")
		regShard = fs.Int("registry-shards", 0, "registry index lock stripes (0 selects the default)")
		clusterA = fs.String("cluster", "", "sharded registry cluster membership, primary[,follower] per shard joined with ';' (mutually exclusive with -registry-dir)")
		chal     = fs.Bool("challenge", false, "enable the /v1/challenge challenge-response plane (requires a registry)")
		chalN    = fs.Uint64("challenge-nonce", 0, "challenge nonce selecting the probed cell population (0 selects the default)")
		pprofAt  = fs.String("pprof-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty disables profiling)")
		version  = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("fmverifyd"))
		return nil
	}
	if *key == "" {
		return errors.New("-key is required (the watermark HMAC key)")
	}

	if *regDir != "" && *clusterA != "" {
		return errors.New("-registry-dir and -cluster are mutually exclusive: the registry is either local or sharded")
	}
	logger := log.New(os.Stderr, "fmverifyd: ", log.LstdFlags)
	var store *registry.Durable
	if *regDir != "" {
		var err error
		store, err = registry.Open(*regDir, registry.Options{Shards: *regShard})
		if err != nil {
			return fmt.Errorf("opening registry %s: %w", *regDir, err)
		}
		defer store.Close()
		st := store.Stats()
		logger.Printf("registry %s: %d identities (%d conflicted) recovered in %v",
			*regDir, st.Keys, st.Conflicts, st.Recovery.Round(time.Millisecond))
	}
	var clusterStore *cluster.Client
	if *clusterA != "" {
		spec, err := cluster.ParseSpec(*clusterA)
		if err != nil {
			return err
		}
		clusterStore, err = cluster.NewClient(spec, cluster.ClientOptions{Logf: logger.Printf})
		if err != nil {
			return err
		}
		defer clusterStore.Close()
		logger.Printf("registry cluster: %d shards", clusterStore.Shards())
	}
	cfg := service.Config{
		Verifier: counterfeit.Verifier{
			Codec:          wmcode.Codec{Key: []byte(*key)},
			Manufacturer:   *mfg,
			SegAddr:        *segment,
			TPEW:           *tpew,
			Replicas:       *replicas,
			CheckRecycling: *recycle,
		},
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		CacheEntries:   *cache,
		Logf:           logger.Printf,
	}
	// The nil checks matter: assigning a nil pointer directly would
	// make the interface non-nil and turn every lookup into a panic.
	if store != nil {
		cfg.Provenance = store
	}
	if clusterStore != nil {
		cfg.Provenance = clusterStore
	}
	if *chal {
		if cfg.Provenance == nil {
			return errors.New("-challenge requires a registry (-registry-dir or -cluster): response fingerprints are enrolled into it")
		}
		cfg.Challenge = &challenge.Policy{Nonce: *chalN}
	} else if *chalN != 0 {
		return errors.New("-challenge-nonce has no effect without -challenge")
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	// Profiling is opt-in and lives on its own listener so the pprof
	// surface is never reachable through the service port; bind it to
	// localhost in production. The handlers are registered explicitly on
	// a private mux — the service mux never serves DefaultServeMux, so
	// net/http/pprof's init-time registrations stay unreachable.
	var pprofSrv *http.Server
	if *pprofAt != "" {
		pprofSrv = &http.Server{
			Addr:              *pprofAt,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Printf("pprof listening on %s", *pprofAt)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logger.Printf("%s received, draining (up to %v)", s, *drainFor)
	}

	// Drain first so readiness flips and in-flight verifications finish,
	// then shut the listener down; both share the drain budget.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	drainErr := srv.Drain(ctx)
	shutErr := httpSrv.Shutdown(ctx)
	if pprofSrv != nil {
		_ = pprofSrv.Shutdown(ctx)
	}
	if drainErr != nil {
		return drainErr
	}
	if shutErr != nil && !errors.Is(shutErr, http.ErrServerClosed) {
		return shutErr
	}
	logger.Printf("drained cleanly")
	return nil
}

// pprofMux exposes exactly the standard pprof surface on a mux of its
// own, keeping the daemon's DefaultServeMux untouched.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
