package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCorpusScenarioAgainstEmbeddedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a scenario")
	}
	var out bytes.Buffer
	if err := run([]string{"-run", "^supplychain-fault$"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "ok    supplychain-fault") || !strings.Contains(s, "1 scenarios, 0 failed") {
		t.Errorf("unexpected output:\n%s", s)
	}
}

func TestDirModeWithGoldenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a scenario twice")
	}
	dir := t.TempDir()
	goldenDir := filepath.Join(dir, "golden")
	outDir := filepath.Join(dir, "out")
	src := `name: tiny
seed: 7
steps:
  - at: 0s
    name: fab
    fabricate: {chip: c, class: unmarked}
  - at: 1h
    name: check
    verify:
      chip: c
      expect: {verdict: NO-WATERMARK, accepted: false}
`
	if err := os.WriteFile(filepath.Join(dir, "tiny.yaml"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-golden", goldenDir, "-update"}, &out); err != nil {
		t.Fatalf("update run: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(filepath.Join(goldenDir, "tiny.json")); err != nil {
		t.Fatalf("golden not written: %v", err)
	}

	out.Reset()
	if err := run([]string{"-dir", dir, "-golden", goldenDir, "-out", outDir}, &out); err != nil {
		t.Fatalf("verify run: %v\n%s", err, out.String())
	}
	got, err := os.ReadFile(filepath.Join(outDir, "tiny.json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(goldenDir, "tiny.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("-out transcript differs from the golden the same run passed against")
	}
}

// TestGoldenDivergenceAndRunFailure pins the two FAIL shapes: a stale
// golden reports the first differing line, and a scenario whose own
// expectation fails reports the step error — both through the summary
// line and a non-nil run error.
func TestGoldenDivergenceAndRunFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("replays scenarios")
	}
	dir := t.TempDir()
	goldenDir := filepath.Join(dir, "golden")
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `name: tiny
seed: 7
steps:
  - at: 0s
    name: fab
    fabricate: {chip: c, class: unmarked}
`
	if err := os.WriteFile(filepath.Join(dir, "tiny.yaml"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir, "tiny.json"), []byte("{\n  \"stale\": true\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-dir", dir, "-golden", goldenDir, "-v"}, &out)
	if err == nil {
		t.Fatalf("stale golden passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "diverged") || !strings.Contains(out.String(), "line ") {
		t.Errorf("divergence not located:\n%s", out.String())
	}

	doomed := `name: doomed
seed: 7
steps:
  - at: 0s
    name: fab
    fabricate: {chip: c, class: unmarked}
  - at: 1h
    name: check
    verify: {chip: c, expect: {verdict: GENUINE}}
`
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "doomed.yaml"), []byte(doomed), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-dir", dir2}, &out); err == nil {
		t.Fatalf("failing scenario passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL  doomed") {
		t.Errorf("failure not reported:\n%s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-run", "("}, &out); err == nil {
		t.Error("bad regexp accepted")
	}
	if err := run([]string{"-update"}, &out); err == nil {
		t.Error("-update without -golden accepted")
	}
	if err := run([]string{"-run", "matches-nothing-at-all"}, &out); err == nil {
		t.Error("empty selection should fail")
	}
}
