// Command fmscenario runs temporal supply-chain scenarios: declarative
// YAML timelines (internal/scenario) whose steps fabricate, age, clone,
// enroll, verify, and challenge chips against a live in-process
// fmverifyd over the virtual clock.
//
// By default it replays the embedded corpus (internal/scenario/corpus)
// and byte-diffs every transcript against its committed golden:
//
//	fmscenario                 # run the corpus, diff against goldens
//	fmscenario -run clone      # only scenarios matching the regexp
//	fmscenario -out DIR        # also write transcripts to DIR
//
// A directory of scenario files can be run instead; golden comparison
// is then opt-in:
//
//	fmscenario -dir ./scenarios                  # just run them
//	fmscenario -dir ./scenarios -golden ./gold   # and diff transcripts
//	fmscenario -dir ./scenarios -golden ./gold -update   # rewrite goldens
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/flashmark/flashmark/internal/scenario"
	"github.com/flashmark/flashmark/internal/scenario/corpus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fmscenario:", err)
		os.Exit(1)
	}
}

// source is one scenario to execute, already parsed.
type source struct {
	sc *scenario.Scenario
	// golden returns the committed transcript to diff against, or nil
	// when no golden exists for this scenario.
	golden func() ([]byte, error)
}

type outcome struct {
	name  string
	steps int
	err   error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fmscenario", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dir     = fs.String("dir", "", "run *.yaml scenarios from this directory instead of the embedded corpus")
		runRe   = fs.String("run", "", "only run scenarios whose name matches this regexp")
		outDir  = fs.String("out", "", "write each transcript to this directory as <name>.json")
		golden  = fs.String("golden", "", "diff transcripts against <dir>/<name>.json (embedded goldens when running the embedded corpus)")
		update  = fs.Bool("update", false, "rewrite the -golden directory from this run instead of diffing")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "scenarios to run concurrently")
		verbose = fs.Bool("v", false, "log every step as it executes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1")
	}
	if *update && *golden == "" {
		return fmt.Errorf("-update requires -golden DIR (the embedded goldens are updated by " +
			"go test ./internal/scenario/corpus -run TestCorpusGolden -update)")
	}
	var filter *regexp.Regexp
	if *runRe != "" {
		re, err := regexp.Compile(*runRe)
		if err != nil {
			return fmt.Errorf("bad -run regexp: %w", err)
		}
		filter = re
	}

	sources, err := loadSources(*dir, *golden, filter)
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("no scenarios to run")
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	if *update {
		if err := os.MkdirAll(*golden, 0o755); err != nil {
			return err
		}
	}

	var mu sync.Mutex // serializes output and result collection
	results := make([]outcome, 0, len(sources))
	sem := make(chan struct{}, *workers)
	var wg sync.WaitGroup
	for _, src := range sources {
		wg.Add(1)
		go func(src source) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			oc := execute(src, *outDir, *golden, *update, *verbose, out, &mu)
			mu.Lock()
			results = append(results, oc)
			mu.Unlock()
		}(src)
	}
	wg.Wait()

	sort.Slice(results, func(i, j int) bool { return results[i].name < results[j].name })
	failed := 0
	for _, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(out, "FAIL  %-36s %v\n", r.name, r.err)
		} else {
			fmt.Fprintf(out, "ok    %-36s %d steps\n", r.name, r.steps)
		}
	}
	fmt.Fprintf(out, "%d scenarios, %d failed\n", len(results), failed)
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(results))
	}
	return nil
}

// loadSources parses every selected scenario up front, so a syntax
// error anywhere aborts before any world is built.
func loadSources(dir, goldenDir string, filter *regexp.Regexp) ([]source, error) {
	var files []struct {
		name string
		read func() ([]byte, error)
	}
	if dir == "" {
		for _, name := range corpus.Names() {
			name := name
			files = append(files, struct {
				name string
				read func() ([]byte, error)
			}{name, func() ([]byte, error) { return corpus.Source(name) }})
		}
	} else {
		names, err := filepath.Glob(filepath.Join(dir, "*.yaml"))
		if err != nil {
			return nil, err
		}
		sort.Strings(names)
		for _, path := range names {
			path := path
			files = append(files, struct {
				name string
				read func() ([]byte, error)
			}{filepath.Base(path), func() ([]byte, error) { return os.ReadFile(path) }})
		}
	}
	var sources []source
	for _, f := range files {
		data, err := f.read()
		if err != nil {
			return nil, err
		}
		sc, err := scenario.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		if filter != nil && !filter.MatchString(sc.Name) {
			continue
		}
		src := source{sc: sc}
		switch {
		case goldenDir != "":
			name := sc.Name
			src.golden = func() ([]byte, error) {
				return os.ReadFile(filepath.Join(goldenDir, name+".json"))
			}
		case dir == "":
			name := sc.Name
			src.golden = func() ([]byte, error) { return corpus.Golden(name) }
		}
		sources = append(sources, src)
	}
	return sources, nil
}

func execute(src source, outDir, goldenDir string, update, verbose bool, out io.Writer, mu *sync.Mutex) outcome {
	oc := outcome{name: src.sc.Name}
	opts := scenario.RunOptions{}
	if verbose {
		opts.Logf = func(format string, args ...any) {
			mu.Lock()
			fmt.Fprintf(out, format+"\n", args...)
			mu.Unlock()
		}
	}
	tr, err := scenario.Run(src.sc, opts)
	if err != nil {
		oc.err = err
		return oc
	}
	oc.steps = len(tr.Steps)
	enc, err := tr.Encode()
	if err != nil {
		oc.err = err
		return oc
	}
	if outDir != "" {
		if err := os.WriteFile(filepath.Join(outDir, src.sc.Name+".json"), enc, 0o644); err != nil {
			oc.err = err
			return oc
		}
	}
	if update {
		oc.err = os.WriteFile(filepath.Join(goldenDir, src.sc.Name+".json"), enc, 0o644)
		return oc
	}
	if src.golden != nil {
		want, err := src.golden()
		if err != nil {
			oc.err = fmt.Errorf("reading golden: %w", err)
			return oc
		}
		if !bytes.Equal(enc, want) {
			oc.err = fmt.Errorf("transcript diverged from golden (%s)", firstDiff(enc, want))
		}
	}
	return oc
}

// firstDiff locates the first differing line, for a readable failure.
func firstDiff(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d: got %q, want %q", i+1, strings.TrimSpace(g[i]), strings.TrimSpace(w[i]))
		}
	}
	return fmt.Sprintf("got %d lines, want %d", len(g), len(w))
}
