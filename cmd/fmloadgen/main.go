// Command fmloadgen is the synthetic-fleet load harness for fmverifyd:
// it fabricates a chip population (genuine stock, replay-imprint clones
// sharing victims' die ids, and assorted counterfeits), derives a
// Poisson request schedule from a seed, and drives a live daemon over
// HTTP with bounded open-loop concurrency. The measured SLOs — verify
// latency percentiles, sustained verifies/sec, enroll throughput, shed
// rate — are written as BENCH_service.json (schema
// flashmark-bench-service/v1) for scripts/check_bench.sh to gate
// against scripts/bench_service_baseline.json, the same loop the
// physics and registry benches already close in CI.
//
// Usage:
//
//	fmloadgen -target http://127.0.0.1:8900 -key secret -rate 150 -duration 10s -out BENCH_service.json
//	fmloadgen -seed 7 -plan-only        # print the schedule digest without sending anything
//	fmloadgen -version
//
// Reproducibility: every stochastic choice (arrival times, op mix, chip
// picks, batch sizes, fleet classes) derives from -seed, so two runs
// with identical flags issue identical request sequences; -plan-only
// prints the schedule digest that pins this.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/flashmark/flashmark/internal/buildinfo"
	"github.com/flashmark/flashmark/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fmloadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fmloadgen", flag.ContinueOnError)
	var (
		target    = fs.String("target", "", "base URL of a live fmverifyd (required unless -plan-only)")
		seed      = fs.Uint64("seed", 1, "master scenario seed (schedule + fleet)")
		rate      = fs.Float64("rate", 100, "mean Poisson arrival rate, requests/second")
		duration  = fs.Duration("duration", 10*time.Second, "span arrivals are generated over")
		inflight  = fs.Int("inflight", 64, "bounded open-loop concurrency cap")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-request client timeout")
		genuine   = fs.Int("fleet-genuine", 24, "genuine watermarked chips in the fleet")
		clones    = fs.Int("fleet-clones", 8, "replay-imprint clones of genuine die ids (-1 disables)")
		forged    = fs.Int("fleet-counterfeits", 8, "non-clone counterfeit chips (-1 disables)")
		part      = fs.String("part", "FM-SIM16", "catalog NOR part to fabricate")
		key       = fs.String("key", "loadgen-key", "watermark HMAC key (must match the daemon's -key)")
		mfg       = fs.String("mfg", "", "imprinted manufacturer string (empty selects the factory default)")
		mixVerify = fs.Float64("mix-verify", 8, "relative weight of single verifies")
		mixBatch  = fs.Float64("mix-batch", 1, "relative weight of batch verifies")
		mixEnroll = fs.Float64("mix-enroll", 1, "relative weight of enrollments")
		batchMean = fs.Float64("batch-mean", 3, "mean chips beyond the first per batch request")
		batchMax  = fs.Int("batch-max", 16, "batch size cap")
		outPath   = fs.String("out", "BENCH_service.json", "report path")
		planOnly  = fs.Bool("plan-only", false, "build and print the schedule digest; send nothing")
		quiet     = fs.Bool("quiet", false, "suppress progress output")
		version   = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("fmloadgen"))
		return nil
	}
	cfg := loadgen.Config{
		Target:      *target,
		Seed:        *seed,
		Rate:        *rate,
		Duration:    *duration,
		MaxInFlight: *inflight,
		Timeout:     *timeout,
		Fleet: loadgen.FleetSpec{
			Genuine:      *genuine,
			Clones:       *clones,
			Counterfeits: *forged,
			Part:         *part,
			Key:          *key,
			Manufacturer: *mfg,
		},
		Mix:       loadgen.Mix{Verify: *mixVerify, Batch: *mixBatch, Enroll: *mixEnroll},
		BatchMean: *batchMean,
		BatchMax:  *batchMax,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "fmloadgen: "+format+"\n", args...)
		}
	}

	plan := loadgen.BuildPlan(cfg)
	fmt.Fprintf(out, "plan: %d requests (%d verify, %d batch, %d enroll) over %v, digest %s\n",
		len(plan.Requests), plan.Count(loadgen.OpVerify), plan.Count(loadgen.OpBatch),
		plan.Count(loadgen.OpEnroll), *duration, plan.Digest())
	if *planOnly {
		return nil
	}
	if *target == "" {
		return errors.New("-target is required (or use -plan-only)")
	}

	fleet, err := loadgen.BuildFleet(cfg.Fleet, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fleet: %d chips (%d genuine, %d clones, %d counterfeits)\n",
		cfg.Fleet.Size(), cfg.Fleet.Genuine, cfg.Fleet.Clones, cfg.Fleet.Counterfeits)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	res, err := loadgen.Run(ctx, cfg, plan, fleet)
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	rep := loadgen.BuildReport(cfg, res)
	if err := rep.WriteFile(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "sent %d (dropped %d) in %.1fs: %.1f verifies/s, verify p50/p99/p999 %.1f/%.1f/%.1f ms, "+
		"%.1f enrolls/s, %d DUPLICATE-ID, shed %d (rate %.3f), %d errors -> %s\n",
		rep.SentRequests, rep.ClientDropped, rep.ElapsedS, rep.VerifiesPerSec,
		rep.VerifyP50Ms, rep.VerifyP99Ms, rep.VerifyP999Ms,
		rep.EnrollsPerSec, rep.DuplicateIDVerdicts, rep.Shed429, rep.ShedRate,
		rep.HTTPErrors, *outPath)
	if rep.HTTPErrors > 0 {
		return fmt.Errorf("%d requests failed (transport or non-200/429 status)", rep.HTTPErrors)
	}
	return nil
}
