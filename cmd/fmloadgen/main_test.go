package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/service"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "fmloadgen ") {
		t.Fatalf("banner %q", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestRunRequiresTarget(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out)
	if err == nil || !strings.Contains(err.Error(), "-target") {
		t.Fatalf("missing target must fail with a -target hint, got %v", err)
	}
}

// TestPlanOnlyIsDeterministic runs the CLI twice with the same seed and
// no server: the printed schedule digests must match — the acceptance
// check the loadgen-slo CI job repeats.
func TestPlanOnlyIsDeterministic(t *testing.T) {
	digest := func(seed string) string {
		t.Helper()
		var out bytes.Buffer
		if err := run([]string{"-plan-only", "-seed", seed, "-duration", "2s", "-rate", "250"}, &out); err != nil {
			t.Fatal(err)
		}
		line := out.String()
		i := strings.LastIndex(line, "digest ")
		if i < 0 {
			t.Fatalf("no digest in %q", line)
		}
		return strings.TrimSpace(line[i+len("digest "):])
	}
	a, b := digest("21"), digest("21")
	if a != b {
		t.Fatalf("same seed, different digests: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("digest %q is not a sha256 hex", a)
	}
	if c := digest("22"); c == a {
		t.Fatal("different seed reproduced the digest")
	}
}

// TestRunEndToEnd exercises the full CLI path against an in-process
// service handler and checks the report lands on disk.
func TestRunEndToEnd(t *testing.T) {
	srv, err := service.New(service.Config{
		Verifier:   counterfeit.Verifier{Codec: wmcode.Codec{Key: []byte("loadgen-key")}},
		Provenance: registry.NewMemory(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	outPath := filepath.Join(t.TempDir(), "BENCH_service.json")
	var out bytes.Buffer
	err = run([]string{
		"-target", ts.URL,
		"-seed", "5",
		"-rate", "200",
		"-duration", "1s",
		"-fleet-genuine", "3",
		"-fleet-clones", "2",
		"-fleet-counterfeits", "2",
		"-quiet",
		"-out", outPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep["schema"] != "flashmark-bench-service/v1" {
		t.Fatalf("schema %v", rep["schema"])
	}
	if n, _ := rep["http_errors"].(float64); n != 0 {
		t.Fatalf("http_errors %v", rep["http_errors"])
	}
	if n, _ := rep["chips_verified"].(float64); n <= 0 {
		t.Fatalf("chips_verified %v", rep["chips_verified"])
	}
}
