// Command fmsupplychain narrates the paper's supply-chain stories. It
// is a thin presentation layer over internal/scenario: each flow is a
// committed YAML timeline in internal/scenario/corpus, replayed here
// against a live in-process fmverifyd and rendered as a readable
// inspection log.
//
//	fmsupplychain              # the basic incoming-inspection flow
//	fmsupplychain -crossbatch  # cross-batch clone audit with a registry
//	fmsupplychain -fault       # the misbehaving-silicon lane
//	fmsupplychain -scenario X  # any other corpus scenario by name
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/flashmark/flashmark/internal/scenario"
	"github.com/flashmark/flashmark/internal/scenario/corpus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fmsupplychain:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fmsupplychain", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		crossbatch = fs.Bool("crossbatch", false, "run the cross-batch clone audit (registry-backed)")
		fault      = fs.Bool("fault", false, "run the misbehaving-silicon flow (fault injection)")
		name       = fs.String("scenario", "", "run this corpus scenario instead of a built-in flow")
		verbose    = fs.Bool("v", false, "log every step as it executes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	which := "supplychain-basic"
	switch {
	case *name != "":
		which = *name
	case *crossbatch:
		which = "supplychain-crossbatch"
	case *fault:
		which = "supplychain-fault"
	}

	src, err := corpus.Source(which + ".yaml")
	if err != nil {
		return fmt.Errorf("no corpus scenario %q (see internal/scenario/corpus)", which)
	}
	sc, err := scenario.Parse(src)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replaying scenario %s (%d steps, registry %s, backend %s)\n",
		sc.Name, len(sc.Steps), sc.Registry, sc.Config.Backend)
	opts := scenario.RunOptions{}
	if *verbose {
		opts.Logf = func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
	}
	tr, err := scenario.Run(sc, opts)
	if err != nil {
		return err
	}
	narrate(out, tr)
	return nil
}

// narrate renders the transcript as an inspection log: one line per
// step, with verdicts and registry findings pulled out of the raw
// step results.
func narrate(out io.Writer, tr *scenario.Transcript) {
	accepted, refused := 0, 0
	for _, st := range tr.Steps {
		var r struct {
			Chip   string `json:"chip"`
			Class  string `json:"class"`
			Of     string `json:"of"`
			Report *struct {
				Verdict    string `json:"verdict"`
				Accepted   bool   `json:"accepted"`
				Provenance string `json:"provenance"`
				Fault      string `json:"fault"`
				Conflict   bool   `json:"conflict"`
				Count      int    `json:"count"`
			} `json:"report"`
			Registry *struct {
				Keys        int64 `json:"keys"`
				Enrollments int64 `json:"enrollments"`
				Conflicts   int64 `json:"conflicts"`
			} `json:"registry"`
		}
		_ = json.Unmarshal(st.Result, &r)
		line := fmt.Sprintf("t=%-10s %-10s %-28s", st.At, st.Verb, st.Name)
		switch st.Verb {
		case "fabricate":
			line += fmt.Sprintf("chip %s (%s)", r.Chip, r.Class)
		case "clone":
			line += fmt.Sprintf("chip %s cloned from %s", r.Chip, r.Of)
		case "verify":
			if rep := r.Report; rep != nil {
				line += fmt.Sprintf("chip %s -> %s", r.Chip, rep.Verdict)
				if rep.Accepted {
					accepted++
				} else {
					refused++
				}
				if rep.Provenance != "" {
					line += fmt.Sprintf(" (escalated: %s)", rep.Provenance)
				}
				if rep.Fault != "" {
					line += fmt.Sprintf(" (fault: %s)", rep.Fault)
				}
			}
		case "enroll":
			if rep := r.Report; rep != nil {
				line += fmt.Sprintf("chip %s -> %s (count %d)", r.Chip, rep.Verdict, rep.Count)
				if rep.Conflict {
					line += " CONFLICT"
				}
			}
		case "expect":
			if r.Registry != nil {
				line += fmt.Sprintf("registry: %d keys, %d enrollments, %d conflicts",
					r.Registry.Keys, r.Registry.Enrollments, r.Registry.Conflicts)
			} else {
				line += "metrics ok"
			}
		}
		fmt.Fprintln(out, line)
	}
	fmt.Fprintf(out, "inspection complete: %d accepted, %d refused, all expectations held\n", accepted, refused)
}
