// Command fmsupplychain simulates a mixed chip population flowing through
// a system integrator's incoming inspection: genuine dice, re-entered
// rejects, recycled parts, metadata forgeries, digital clones, tampered
// rejects, rebranded blanks — and prints the resulting verdicts and the
// confusion matrix (experiment TAB-SUPPLY, driven by §I's threat list).
//
// With -crossbatch it instead runs the cross-batch replay-clone demo: a
// clone shipped in a different batch than its victim slips past the
// batch-local audit but is caught (with its victim retroactively
// tainted) by the fleet-scale registry (internal/registry).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/flashmark/flashmark/internal/buildinfo"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/registry"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fmsupplychain:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fmsupplychain", flag.ContinueOnError)
	var (
		perClass = fs.Int("n", 3, "chips per counterfeit class")
		genuine  = fs.Int("genuine", 6, "genuine ACCEPT chips")
		seed     = fs.Uint64("seed", 0xBA5E, "population seed")
		partName = fs.String("part", "FM-SIM16", "simulated part")
		npe      = fs.Int("npe", 80_000, "manufacturer imprint cycles")
		recycle  = fs.Bool("recycling-screen", true, "enable the data-segment wear screen")
		workers  = fs.Int("workers", 4, "chips verified in parallel")
		cross    = fs.Bool("crossbatch", false, "run the cross-batch replay-clone demo instead: batch-local audit vs fleet registry")
		version  = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("fmsupplychain"))
		return nil
	}
	part, err := mcu.PartByName(*partName)
	if err != nil {
		return err
	}
	key := []byte("trusted-chipmaker-signing-key")
	factory := counterfeit.FactoryConfig{
		Fab:          mcu.Fab(part),
		Codec:        wmcode.Codec{Key: key},
		Manufacturer: "TC",
		NPE:          *npe,
	}
	verifier := &counterfeit.Verifier{
		Codec:          wmcode.Codec{Key: key},
		Manufacturer:   "TC",
		TPEW:           25 * time.Microsecond,
		CheckRecycling: *recycle,
	}
	if *cross {
		return runCrossBatch(out, factory, verifier)
	}
	spec := counterfeit.PopulationSpec{
		counterfeit.ClassGenuineAccept:   *genuine,
		counterfeit.ClassGenuineReject:   *perClass,
		counterfeit.ClassRecycled:        *perClass,
		counterfeit.ClassMetadataForgery: *perClass,
		counterfeit.ClassDigitalClone:    *perClass,
		counterfeit.ClassTopUpTamper:     *perClass,
		counterfeit.ClassUnmarked:        *perClass,
	}
	fmt.Fprintf(out, "fabricating and verifying %d chips (%d workers)...\n\n", total(spec), *workers)
	matrix, outcomes, err := counterfeit.RunPopulationParallel(spec, factory, verifier, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-20s %-16s %s\n", "ground truth", "verdict", "decision")
	for _, o := range outcomes {
		decision := "REFUSE"
		if o.Verdict.Accepted() {
			decision = "accept"
		}
		fmt.Fprintf(out, "%-20s %-16s %s\n", o.Class, o.Verdict, decision)
	}
	fmt.Fprintf(out, "\nconfusion matrix:\n%s\n", matrix)
	fmt.Fprintf(out, "correct accept/refuse rate: %.1f%%\n", 100*matrix.CorrectAcceptRate())
	fmt.Fprintf(out, "false accepts: %d   false rejects: %d\n", matrix.FalseAccepts(), matrix.FalseRejects())
	return nil
}

func total(spec counterfeit.PopulationSpec) int {
	n := 0
	for _, c := range spec {
		n += c
	}
	return n
}

// runCrossBatch demonstrates the attack the fleet registry exists for: a
// replay-imprinted clone shipped in a different procurement batch than
// its victim. Physics calls both GENUINE; the batch-local audit sees
// each batch clean because the duplicate ids never meet; the fleet
// registry — the same dedup kernel spanning both batches — catches the
// collision and retroactively taints the victim.
func runCrossBatch(out io.Writer, factory counterfeit.FactoryConfig, verifier *counterfeit.Verifier) error {
	type shipment struct {
		label string
		class counterfeit.ChipClass
		seed  uint64
		die   uint64
	}
	batches := [][]shipment{
		{{"victim", counterfeit.ClassGenuineAccept, 0xB1A, 101},
			{"clean", counterfeit.ClassGenuineAccept, 0xB1B, 102}},
		{{"clone", counterfeit.ClassReplayImprint, 0xB2A, 101},
			{"clean", counterfeit.ClassGenuineAccept, 0xB2B, 103}},
	}
	type row struct {
		batch    int
		label    string
		physics  counterfeit.Verdict
		batchDup bool
		key      registry.Key
	}
	fleet := registry.NewMemory(0)
	var rows []row
	fmt.Fprintf(out, "two procurement batches, verified independently:\n\n")
	for bi, batch := range batches {
		audit := counterfeit.NewAuditor() // batch-local scope, as before
		for _, sh := range batch {
			dev, err := counterfeit.Fabricate(sh.class, factory, sh.seed, sh.die)
			if err != nil {
				return err
			}
			res, err := verifier.Verify(dev)
			if err != nil {
				return err
			}
			r := row{batch: bi + 1, label: sh.label, physics: res.Verdict}
			if res.Verdict.Accepted() {
				r.key = registry.Key{Manufacturer: res.Payload.Manufacturer, DieID: res.Payload.DieID}
				r.batchDup = audit.Record(r.key.Manufacturer, r.key.DieID)
				if _, err := fleet.Enroll(registry.Enrollment{
					Key:         r.key,
					Fingerprint: registry.DeviceFingerprint(dev.PartName(), dev.Seed()),
					Source:      fmt.Sprintf("batch-%d", bi+1),
				}); err != nil {
					return err
				}
			}
			rows = append(rows, r)
		}
	}
	fmt.Fprintf(out, "%-6s %-8s %-10s %-12s %s\n", "batch", "chip", "physics", "batch-audit", "fleet registry")
	batchFlagged, fleetFlagged := 0, 0
	for _, r := range rows {
		batchVerdict, fleetVerdict := "unique", "unique"
		if r.batchDup {
			batchVerdict = "DUPLICATE-ID"
			batchFlagged++
		}
		if lr, ok := fleet.Lookup(r.key); ok && lr.Conflict {
			fleetVerdict = "DUPLICATE-ID"
			fleetFlagged++
		}
		if r.physics != counterfeit.VerdictGenuine {
			batchVerdict, fleetVerdict = "-", "-"
		}
		fmt.Fprintf(out, "%-6d %-8s %-10s %-12s %s\n", r.batch, r.label, r.physics, batchVerdict, fleetVerdict)
	}
	fmt.Fprintf(out, "\nbatch-local audit flagged %d chips; fleet registry flagged %d (clone and its victim)\n",
		batchFlagged, fleetFlagged)
	if fleetFlagged < 2 {
		return fmt.Errorf("cross-batch demo expected the fleet registry to flag clone and victim, flagged %d", fleetFlagged)
	}
	return nil
}
