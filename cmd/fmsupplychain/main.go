// Command fmsupplychain simulates a mixed chip population flowing through
// a system integrator's incoming inspection: genuine dice, re-entered
// rejects, recycled parts, metadata forgeries, digital clones, tampered
// rejects, rebranded blanks — and prints the resulting verdicts and the
// confusion matrix (experiment TAB-SUPPLY, driven by §I's threat list).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/flashmark/flashmark/internal/buildinfo"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fmsupplychain:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fmsupplychain", flag.ContinueOnError)
	var (
		perClass = fs.Int("n", 3, "chips per counterfeit class")
		genuine  = fs.Int("genuine", 6, "genuine ACCEPT chips")
		seed     = fs.Uint64("seed", 0xBA5E, "population seed")
		partName = fs.String("part", "FM-SIM16", "simulated part")
		npe      = fs.Int("npe", 80_000, "manufacturer imprint cycles")
		recycle  = fs.Bool("recycling-screen", true, "enable the data-segment wear screen")
		workers  = fs.Int("workers", 4, "chips verified in parallel")
		version  = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("fmsupplychain"))
		return nil
	}
	part, err := mcu.PartByName(*partName)
	if err != nil {
		return err
	}
	key := []byte("trusted-chipmaker-signing-key")
	factory := counterfeit.FactoryConfig{
		Fab:          mcu.Fab(part),
		Codec:        wmcode.Codec{Key: key},
		Manufacturer: "TC",
		NPE:          *npe,
	}
	verifier := &counterfeit.Verifier{
		Codec:          wmcode.Codec{Key: key},
		Manufacturer:   "TC",
		TPEW:           25 * time.Microsecond,
		CheckRecycling: *recycle,
	}
	spec := counterfeit.PopulationSpec{
		counterfeit.ClassGenuineAccept:   *genuine,
		counterfeit.ClassGenuineReject:   *perClass,
		counterfeit.ClassRecycled:        *perClass,
		counterfeit.ClassMetadataForgery: *perClass,
		counterfeit.ClassDigitalClone:    *perClass,
		counterfeit.ClassTopUpTamper:     *perClass,
		counterfeit.ClassUnmarked:        *perClass,
	}
	fmt.Fprintf(out, "fabricating and verifying %d chips (%d workers)...\n\n", total(spec), *workers)
	matrix, outcomes, err := counterfeit.RunPopulationParallel(spec, factory, verifier, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-20s %-16s %s\n", "ground truth", "verdict", "decision")
	for _, o := range outcomes {
		decision := "REFUSE"
		if o.Verdict.Accepted() {
			decision = "accept"
		}
		fmt.Fprintf(out, "%-20s %-16s %s\n", o.Class, o.Verdict, decision)
	}
	fmt.Fprintf(out, "\nconfusion matrix:\n%s\n", matrix)
	fmt.Fprintf(out, "correct accept/refuse rate: %.1f%%\n", 100*matrix.CorrectAcceptRate())
	fmt.Fprintf(out, "false accepts: %d   false rejects: %d\n", matrix.FalseAccepts(), matrix.FalseRejects())
	return nil
}

func total(spec counterfeit.PopulationSpec) int {
	n := 0
	for _, c := range spec {
		n += c
	}
	return n
}
