package main

import (
	"bytes"
	"strings"
	"testing"
)

type sink struct{ bytes.Buffer }

func TestSupplyChainScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("population scenario is slow")
	}
	var out sink
	err := run([]string{"-n", "1", "-genuine", "2", "-npe", "80000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"fabricating and verifying 8 chips",
		"genuine-accept",
		"confusion matrix:",
		"correct accept/refuse rate: 100.0%",
		"false accepts: 0   false rejects: 0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSupplyChainCrossBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("crossbatch demo imprints four chips")
	}
	var out sink
	if err := run([]string{"-crossbatch"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"batch-local audit flagged 0 chips; fleet registry flagged 2",
		"clone",
		"victim",
		"DUPLICATE-ID",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSupplyChainBadFlags(t *testing.T) {
	var out sink
	if err := run([]string{"-part", "Z80"}, &out); err == nil {
		t.Error("unknown part accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
