package main

import (
	"bytes"
	"strings"
	"testing"
)

type sink struct{ bytes.Buffer }

func TestSupplyChainBasic(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a full scenario")
	}
	var out sink
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"replaying scenario supplychain-basic",
		"genuine-accept",
		"RECYCLED",
		"NO-WATERMARK",
		"TAMPERED",
		"all expectations held",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSupplyChainCrossBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a registry-backed scenario")
	}
	var out sink
	if err := run([]string{"-crossbatch"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"replaying scenario supplychain-crossbatch",
		"cloned from victim",
		"DUPLICATE-ID",
		"escalated",
		"CONFLICT",
		"1 keys, 2 enrollments, 1 conflicts",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSupplyChainFault(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a fault-injection scenario")
	}
	var out sink
	if err := run([]string{"-fault"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"replaying scenario supplychain-fault",
		"INCONCLUSIVE",
		"fault:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSupplyChainBadFlags(t *testing.T) {
	var out sink
	if err := run([]string{"-scenario", "no-such-scenario"}, &out); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
