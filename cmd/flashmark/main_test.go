package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out)
	return out.String(), err
}

func chipPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "die.chip")
}

func TestUsageErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("no args accepted")
	}
	if _, err := runCmd(t, "frobnicate"); err == nil {
		t.Error("unknown command accepted")
	}
	for _, cmd := range []string{"new", "imprint", "extract", "verify", "characterize", "detect", "info", "age"} {
		if _, err := runCmd(t, cmd); err == nil {
			t.Errorf("%s without -chip accepted", cmd)
		}
	}
}

func TestNewAndInfo(t *testing.T) {
	chip := chipPath(t)
	out, err := runCmd(t, "new", "-chip", chip, "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fabricated FM-SIM16 die (seed 7)") {
		t.Errorf("new output: %q", out)
	}
	if _, err := os.Stat(chip); err != nil {
		t.Fatalf("chip file not written: %v", err)
	}
	out, err = runCmd(t, "info", "-chip", chip)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "part:     FM-SIM16") || !strings.Contains(out, "seed:     7") {
		t.Errorf("info output: %q", out)
	}
}

func TestNewBadPart(t *testing.T) {
	if _, err := runCmd(t, "new", "-chip", chipPath(t), "-part", "Z80"); err == nil {
		t.Error("unknown part accepted")
	}
}

func TestImprintExtractVerifyFlow(t *testing.T) {
	chip := chipPath(t)
	if _, err := runCmd(t, "new", "-chip", chip, "-seed", "42"); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "imprint", "-chip", chip, "-mfg", "TC", "-die", "1001",
		"-status", "accept", "-npe", "80000", "-key", "secret")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "imprinted TC/ACCEPT die=1001") {
		t.Errorf("imprint output: %q", out)
	}

	out, err = runCmd(t, "extract", "-chip", chip, "-key", "secret")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"manufacturer: TC", "die id:       1001", "status:       ACCEPT", "tampered=false"} {
		if !strings.Contains(out, want) {
			t.Errorf("extract output missing %q:\n%s", want, out)
		}
	}

	out, err = runCmd(t, "verify", "-chip", chip, "-mfg", "TC", "-key", "secret")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "verdict: GENUINE") || !strings.Contains(out, "decision: ACCEPT") {
		t.Errorf("verify output: %q", out)
	}
}

func TestImprintRejectThenVerifyRefuses(t *testing.T) {
	chip := chipPath(t)
	if _, err := runCmd(t, "new", "-chip", chip, "-seed", "43"); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "imprint", "-chip", chip, "-status", "reject", "-key", "k"); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "verify", "-chip", chip, "-key", "k")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "verdict: REJECT-DIE") || !strings.Contains(out, "decision: REFUSE") {
		t.Errorf("verify output: %q", out)
	}
}

func TestImprintBadStatus(t *testing.T) {
	chip := chipPath(t)
	if _, err := runCmd(t, "new", "-chip", chip); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "imprint", "-chip", chip, "-status", "maybe"); err == nil {
		t.Error("bad status accepted")
	}
}

func TestCharacterizeAndDetect(t *testing.T) {
	chip := chipPath(t)
	if _, err := runCmd(t, "new", "-chip", chip, "-seed", "44"); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "characterize", "-chip", chip, "-segment", "1", "-step", "5us")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "all cells erased at t_PE >=") {
		t.Errorf("characterize output: %q", out)
	}
	out, err = runCmd(t, "detect", "-chip", chip, "-segment", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "assessment: fresh") {
		t.Errorf("detect on fresh chip: %q", out)
	}
}

func TestAgePersistsAndIsMonotone(t *testing.T) {
	chip := chipPath(t)
	if _, err := runCmd(t, "new", "-chip", chip); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "age", "-chip", chip, "-years", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "aged to 5.0 years") {
		t.Errorf("age output: %q", out)
	}
	if _, err := runCmd(t, "age", "-chip", chip, "-years", "2"); err == nil {
		t.Error("rejuvenation accepted")
	}
}

func TestCalibrateCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	out, err := runCmd(t, "calibrate", "-npe", "60000", "-dice", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "publish: t_PEW window") {
		t.Errorf("calibrate output: %q", out)
	}
	if _, err := runCmd(t, "calibrate", "-dice", "0"); err == nil {
		t.Error("zero dice accepted")
	}
}

func TestLoadMissingChip(t *testing.T) {
	if _, err := runCmd(t, "info", "-chip", "/nonexistent/die.chip"); err == nil {
		t.Error("missing chip file accepted")
	}
}

func TestExtractWritesVCD(t *testing.T) {
	chip := chipPath(t)
	if _, err := runCmd(t, "new", "-chip", chip, "-seed", "50"); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "imprint", "-chip", chip, "-npe", "1000", "-key", "k"); err != nil {
		t.Fatal(err)
	}
	vcd := filepath.Join(t.TempDir(), "extract.vcd")
	out, err := runCmd(t, "extract", "-chip", chip, "-key", "k", "-vcd", vcd)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "waveform written") {
		t.Errorf("output: %q", out)
	}
	data, err := os.ReadFile(vcd)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"$timescale", "erase", "partial_erase", "$enddefinitions"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("VCD missing %q", want)
		}
	}
}

func TestMapCommand(t *testing.T) {
	chip := chipPath(t)
	if _, err := runCmd(t, "new", "-chip", chip, "-seed", "51"); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "imprint", "-chip", chip, "-npe", "80000", "-key", "k"); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "map", "-chip", chip)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wear map") || !strings.Contains(out, "bank 0: [") {
		t.Errorf("map output: %q", out)
	}
	// The imprinted segment should show visible wear while the rest is blank.
	line := out[strings.Index(out, "["):]
	if !strings.ContainsAny(line, ".:-=+*#%@") {
		t.Errorf("no wear visible in map: %q", out)
	}
	if _, err := runCmd(t, "map"); err == nil {
		t.Error("map without -chip accepted")
	}
}

func TestBatchCommand(t *testing.T) {
	dir := t.TempDir()
	// Two genuine chips and one with a duplicated die ID (replay suspect).
	mk := func(name string, seed, die string) {
		t.Helper()
		chip := filepath.Join(dir, name)
		if _, err := runCmd(t, "new", "-chip", chip, "-seed", seed); err != nil {
			t.Fatal(err)
		}
		if _, err := runCmd(t, "imprint", "-chip", chip, "-die", die, "-npe", "80000", "-key", "k"); err != nil {
			t.Fatal(err)
		}
	}
	mk("a.chip", "100", "501")
	mk("b.chip", "101", "502")
	mk("c.chip", "102", "501") // duplicate die ID
	out, err := runCmd(t, "batch", "-dir", dir, "-key", "k")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.chip", "GENUINE", "DUPLICATE-ID", "accepted 2, refused 1", "duplicate die IDs in batch", "[501]"} {
		if !strings.Contains(out, want) {
			t.Errorf("batch output missing %q:\n%s", want, out)
		}
	}
	if _, err := runCmd(t, "batch"); err == nil {
		t.Error("batch without -dir accepted")
	}
	if _, err := runCmd(t, "batch", "-dir", t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}
