// Command flashmark operates on simulated chips stored in chip files —
// the workflows a manufacturer (imprint) and a system integrator
// (extract/verify) would run against real silicon.
//
// Usage:
//
//	flashmark new -chip die1.chip -part MSP430F5438 -seed 42
//	flashmark new -chip nand1.chip -backend nand -seed 7
//	flashmark new -chip rram1.chip -backend reram -seed 9
//	flashmark imprint -chip die1.chip -mfg TC -die 1001 -status accept -npe 80000 -key secret
//	flashmark extract -chip die1.chip -tpew 25us
//	flashmark verify -chip die1.chip -mfg TC -key secret
//	flashmark characterize -chip die1.chip -segment 1
//	flashmark detect -chip die1.chip -segment 1 -tpew 25us
//	flashmark info -chip die1.chip
//
// The chip file carries the die's physical identity (seed), per-cell wear
// and analog state, so repeated invocations behave like repeated bench
// sessions with one physical chip. Chip files self-describe their
// backend ("flashmark-chip" for NOR parts, "flashmark-nand-chip" for the
// NAND adapter, "flashmark-reram-chip" for the ReRAM backend), so every
// command after `new` works on any substrate unchanged; capabilities a
// backend lacks (wear maps, aging, VCD traces) fail with an explicit
// message instead of silently degrading.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/flashmark/flashmark/internal/buildinfo"
	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/reram"
	"github.com/flashmark/flashmark/internal/vclock"
	"github.com/flashmark/flashmark/internal/wmcode"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flashmark:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: flashmark <new|imprint|extract|verify|characterize|detect|info> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "version", "-version", "--version":
		fmt.Fprintln(out, buildinfo.String("flashmark"))
		return nil
	case "new":
		return cmdNew(rest, out)
	case "imprint":
		return cmdImprint(rest, out)
	case "extract":
		return cmdExtract(rest, out)
	case "verify":
		return cmdVerify(rest, out)
	case "characterize":
		return cmdCharacterize(rest, out)
	case "detect":
		return cmdDetect(rest, out)
	case "info":
		return cmdInfo(rest, out)
	case "calibrate":
		return cmdCalibrate(rest, out)
	case "age":
		return cmdAge(rest, out)
	case "map":
		return cmdMap(rest, out)
	case "batch":
		return cmdBatch(rest, out)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// cmdBatch verifies every chip file in a directory with a shared batch
// audit: the integrator's incoming-inspection workflow over a whole
// shipment, including duplicate-die-ID detection.
func cmdBatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	dir := fs.String("dir", "", "directory of .chip files (required)")
	mfg := fs.String("mfg", "TC", "expected manufacturer")
	key := fs.String("key", "", "verification key")
	tpew := fs.Duration("tpew", 25*time.Microsecond, "partial erase time")
	replicas := fs.Int("replicas", 7, "replica count used at imprint")
	checkRecycling := fs.Bool("recycling", true, "screen data segments for prior use")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("batch: -dir is required")
	}
	entries, err := os.ReadDir(*dir)
	if err != nil {
		return err
	}
	v := &counterfeit.Verifier{
		Codec:          wmcode.Codec{Key: []byte(*key)},
		Manufacturer:   *mfg,
		TPEW:           *tpew,
		Replicas:       *replicas,
		CheckRecycling: *checkRecycling,
		Audit:          counterfeit.NewAuditor(),
	}
	accepted, refused := 0, 0
	fmt.Fprintf(out, "%-24s %-16s %s\n", "chip file", "verdict", "decision")
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".chip") {
			continue
		}
		path := filepath.Join(*dir, e.Name())
		dev, err := loadChip(path)
		if err != nil {
			return fmt.Errorf("batch: %s: %w", e.Name(), err)
		}
		res, err := v.Verify(dev)
		if err != nil {
			return fmt.Errorf("batch: %s: %w", e.Name(), err)
		}
		if err := saveChip(dev, path); err != nil {
			return err
		}
		decision := "REFUSE"
		if res.Verdict.Accepted() {
			decision = "accept"
			accepted++
		} else {
			refused++
		}
		fmt.Fprintf(out, "%-24s %-16s %s\n", e.Name(), res.Verdict, decision)
	}
	if accepted+refused == 0 {
		return fmt.Errorf("batch: no .chip files in %s", *dir)
	}
	fmt.Fprintf(out, "\naccepted %d, refused %d\n", accepted, refused)
	if dups := v.Audit.Duplicates(); len(dups) > 0 {
		fmt.Fprintf(out, "duplicate die IDs in batch (replay suspects, including first-seen): %v\n", dups)
	}
	return nil
}

// cmdMap renders the chip's per-segment mean wear as a heat strip —
// a quick visual of where the watermark and any prior-life usage sit.
func cmdMap(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("map", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("map: -chip is required")
	}
	dev, err := loadChip(*chip)
	if err != nil {
		return err
	}
	geom := dev.Geometry()
	insp, ok := device.As[device.WearInspector](dev)
	if !ok {
		return fmt.Errorf("map: %s does not expose wear inspection", dev.PartName())
	}
	ramp := []byte(" .:-=+*#%@")
	endurance := insp.EnduranceCycles()
	fmt.Fprintf(out, "wear map (%d segments, @ = >= endurance %d cycles):\n", geom.TotalSegments(), int(endurance))
	for bank := 0; bank < geom.Banks; bank++ {
		fmt.Fprintf(out, "bank %d: [", bank)
		for s := 0; s < geom.SegmentsPerBank; s++ {
			seg := bank*geom.SegmentsPerBank + s
			_, meanW, _, err := insp.SegmentWearSummary(seg)
			if err != nil {
				return err
			}
			idx := int(meanW / endurance * float64(len(ramp)-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			if idx < 0 {
				idx = 0
			}
			fmt.Fprintf(out, "%c", ramp[idx])
		}
		fmt.Fprintln(out, "]")
	}
	return nil
}

func cmdCalibrate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	partName := fs.String("part", "FM-SIM16", "part family to calibrate")
	npe := fs.Int("npe", 80_000, "production imprint cycles")
	dice := fs.Int("dice", 3, "number of reference dice")
	seed := fs.Uint64("seed", 0x9000, "base seed for reference dice")
	if err := fs.Parse(args); err != nil {
		return err
	}
	part, err := mcu.PartByName(*partName)
	if err != nil {
		return err
	}
	if *dice <= 0 {
		return fmt.Errorf("calibrate: -dice must be positive")
	}
	seeds := make([]uint64, *dice)
	for i := range seeds {
		seeds[i] = *seed + uint64(i)
	}
	fmt.Fprintf(out, "calibrating %s at N_PE=%d on %d reference dice...\n", part.Name, *npe, *dice)
	cal, err := core.Calibrate(mcu.Fab(part), seeds, *npe, core.CalibrateOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "publish: t_PEW window [%v, %v], best %v (BER %.2f%%)\n",
		cal.WindowLo, cal.WindowHi, cal.Best, 100*cal.BestBER)
	fmt.Fprintf(out, "%-12s %s\n", "t_PEW", "BER (%)")
	for _, p := range cal.Points {
		fmt.Fprintf(out, "%-12v %.2f\n", p.TPEW, 100*p.BER)
	}
	return nil
}

func cmdAge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("age", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file (required)")
	years := fs.Float64("years", 1, "total unpowered storage age in years")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("age: -chip is required")
	}
	dev, err := loadChip(*chip)
	if err != nil {
		return err
	}
	if err := device.Age(dev, *years); err != nil {
		return err
	}
	if err := saveChip(dev, *chip); err != nil {
		return err
	}
	ager, _ := device.As[device.Ager](dev)
	fmt.Fprintf(out, "chip aged to %.1f years of unpowered storage\n", ager.AgeYears())
	return nil
}

// loadChip sniffs the chip file's format field and dispatches to the
// matching backend loader.
func loadChip(path string) (device.Device, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var head struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return nil, fmt.Errorf("%s: not a chip file: %w", path, err)
	}
	switch head.Format {
	case "flashmark-nand-chip":
		return nand.LoadAdapter(bytes.NewReader(raw))
	case reram.ChipFormat:
		return reram.Load(bytes.NewReader(raw))
	default:
		return mcu.LoadDevice(bytes.NewReader(raw))
	}
}

func saveChip(dev device.Device, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dev.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdNew(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("new", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file to create (required)")
	backend := fs.String("backend", "nor", "flash substrate: nor, nand or reram")
	partName := fs.String("part", "FM-SIM16", "part name (NOR backend)")
	seed := fs.Uint64("seed", 1, "die physical identity seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("new: -chip is required")
	}
	var dev device.Device
	switch *backend {
	case "nor":
		part, err := mcu.PartByName(*partName)
		if err != nil {
			return err
		}
		dev, err = mcu.Open(part, *seed)
		if err != nil {
			return err
		}
	case "nand":
		var err error
		dev, err = nand.Open(nand.SmallNAND(), nand.SLCTiming(), floatgate.DefaultParams(), *seed)
		if err != nil {
			return err
		}
	case "reram":
		var err error
		dev, err = reram.Open(reram.DefaultGeometry(), reram.OxRAMTiming(), reram.DefaultParams(), *seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("new: unknown backend %q (have nor, nand, reram)", *backend)
	}
	if err := saveChip(dev, *chip); err != nil {
		return err
	}
	fmt.Fprintf(out, "fabricated %s die (seed %d) -> %s\n", dev.PartName(), *seed, *chip)
	return nil
}

func cmdImprint(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("imprint", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file (required)")
	seg := fs.Int("segment", 0, "watermark segment index")
	mfg := fs.String("mfg", "TC", "manufacturer identifier (up to 8 chars)")
	die := fs.Uint64("die", 1, "die identifier")
	status := fs.String("status", "accept", "die-sort status: accept or reject")
	speed := fs.Uint("speed", 2, "speed grade")
	npe := fs.Int("npe", 80_000, "imprint stress cycles")
	replicas := fs.Int("replicas", 7, "watermark replicas (odd)")
	key := fs.String("key", "", "signing key (empty = unsigned)")
	baselineErase := fs.Bool("baseline-erase", false, "use nominal-time erases (no accelerated early exit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("imprint: -chip is required")
	}
	dev, err := loadChip(*chip)
	if err != nil {
		return err
	}
	var st wmcode.Status
	switch *status {
	case "accept":
		st = wmcode.StatusAccept
	case "reject":
		st = wmcode.StatusReject
	default:
		return fmt.Errorf("imprint: status must be accept or reject, got %q", *status)
	}
	codec := wmcode.Codec{Key: []byte(*key)}
	payload, err := codec.Encode(wmcode.Payload{
		Manufacturer: *mfg,
		DieID:        *die,
		SpeedGrade:   uint8(*speed),
		Status:       st,
		YearWeek:     2627,
	})
	if err != nil {
		return err
	}
	geom := dev.Geometry()
	img, err := core.Replicate(payload, *replicas, geom.WordsPerSegment())
	if err != nil {
		return err
	}
	addr, err := geom.AddrOfSegment(*seg)
	if err != nil {
		return err
	}
	before := dev.Clock().Now()
	err = core.ImprintSegment(dev, addr, img, core.ImprintOptions{NPE: *npe, Accelerated: !*baselineErase})
	if err != nil {
		return err
	}
	if err := saveChip(dev, *chip); err != nil {
		return err
	}
	fmt.Fprintf(out, "imprinted %s/%s die=%d (N_PE=%d, %d replicas) in %v of device time\n",
		*mfg, st, *die, *npe, *replicas, dev.Clock().Now()-before)
	return nil
}

func cmdExtract(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file (required)")
	seg := fs.Int("segment", 0, "watermark segment index")
	tpew := fs.Duration("tpew", 25*time.Microsecond, "partial erase time")
	reads := fs.Int("reads", 3, "majority reads (odd)")
	replicas := fs.Int("replicas", 7, "replica count used at imprint")
	key := fs.String("key", "", "verification key")
	vcd := fs.String("vcd", "", "write the extraction's flash-operation waveform to this VCD file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("extract: -chip is required")
	}
	dev, err := loadChip(*chip)
	if err != nil {
		return err
	}
	geom := dev.Geometry()
	addr, err := geom.AddrOfSegment(*seg)
	if err != nil {
		return err
	}
	var trace *vclock.Trace
	if *vcd != "" {
		tr, ok := device.As[device.Tracer](dev)
		if !ok {
			return fmt.Errorf("extract: %s does not support operation traces", dev.PartName())
		}
		trace = vclock.NewTrace(0)
		tr.SetTrace(trace)
	}
	words, err := core.ExtractSegment(dev, addr, core.ExtractOptions{TPEW: *tpew, Reads: *reads, HostReadout: true})
	if err != nil {
		return err
	}
	if trace != nil {
		f, ferr := os.Create(*vcd)
		if ferr != nil {
			return ferr
		}
		werr := trace.WriteVCD(f, "flashmark_extract")
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(out, "operation waveform written to %s\n", *vcd)
	}
	if err := saveChip(dev, *chip); err != nil {
		return err
	}
	codec := wmcode.Codec{Key: []byte(*key)}
	views, err := core.ReplicaViews(words, codec.PayloadWords(), *replicas)
	if err != nil {
		return err
	}
	payload, rep, derr := codec.DecodeReplicas(views)
	if derr != nil {
		fmt.Fprintf(out, "no decodable watermark: %v\n", derr)
		return nil
	}
	fmt.Fprintf(out, "manufacturer: %s\ndie id:       %d\nspeed grade:  %d\nstatus:       %s\ndate code:    %d\n",
		payload.Manufacturer, payload.DieID, payload.SpeedGrade, payload.Status, payload.YearWeek)
	fmt.Fprintf(out, "integrity:    crc=%v signed=%v signatureOK=%v inconsistentBits=%d tampered=%v\n",
		rep.CRCOK, rep.Signed, rep.SignatureOK, rep.InconsistentBits, rep.Tampered())
	return nil
}

func cmdVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file (required)")
	seg := fs.Int("segment", 0, "watermark segment index")
	mfg := fs.String("mfg", "TC", "expected manufacturer")
	key := fs.String("key", "", "verification key")
	tpew := fs.Duration("tpew", 25*time.Microsecond, "partial erase time")
	replicas := fs.Int("replicas", 7, "replica count used at imprint")
	checkRecycling := fs.Bool("recycling", true, "screen data segments for prior use")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("verify: -chip is required")
	}
	dev, err := loadChip(*chip)
	if err != nil {
		return err
	}
	geom := dev.Geometry()
	addr, err := geom.AddrOfSegment(*seg)
	if err != nil {
		return err
	}
	v := &counterfeit.Verifier{
		Codec:          wmcode.Codec{Key: []byte(*key)},
		Manufacturer:   *mfg,
		SegAddr:        addr,
		TPEW:           *tpew,
		Replicas:       *replicas,
		CheckRecycling: *checkRecycling,
	}
	res, err := v.Verify(dev)
	if err != nil {
		return err
	}
	if err := saveChip(dev, *chip); err != nil {
		return err
	}
	fmt.Fprintf(out, "verdict: %s\n", res.Verdict)
	if res.DecodeErr == nil {
		fmt.Fprintf(out, "payload: %s die=%d status=%s\n", res.Payload.Manufacturer, res.Payload.DieID, res.Payload.Status)
	}
	if res.SampledDataSegments > 0 {
		fmt.Fprintf(out, "wear screen: %d of %d sampled data segments worn\n", res.WornDataSegments, res.SampledDataSegments)
	}
	if !res.Verdict.Accepted() {
		fmt.Fprintln(out, "decision: REFUSE")
	} else {
		fmt.Fprintln(out, "decision: ACCEPT")
	}
	return nil
}

func cmdCharacterize(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file (required)")
	seg := fs.Int("segment", 0, "segment index")
	step := fs.Duration("step", 2*time.Microsecond, "partial erase time step")
	reads := fs.Int("reads", 3, "majority reads (odd)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("characterize: -chip is required")
	}
	dev, err := loadChip(*chip)
	if err != nil {
		return err
	}
	geom := dev.Geometry()
	addr, err := geom.AddrOfSegment(*seg)
	if err != nil {
		return err
	}
	points, err := core.CharacterizeSegment(dev, addr, core.CharacterizeOptions{Step: *step, Reads: *reads})
	if err != nil {
		return err
	}
	if err := saveChip(dev, *chip); err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s %-8s %-8s\n", "t_PE", "cells_0", "cells_1")
	for _, p := range points {
		fmt.Fprintf(out, "%-12v %-8d %-8d\n", p.TPE, p.Cells0, p.Cells1)
	}
	if at, ok := core.AllErasedTime(points); ok {
		fmt.Fprintf(out, "all cells erased at t_PE >= %v\n", at)
	}
	return nil
}

func cmdDetect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file (required)")
	seg := fs.Int("segment", 1, "data segment index to probe")
	tpew := fs.Duration("tpew", 25*time.Microsecond, "partial erase time")
	reads := fs.Int("reads", 3, "majority reads (odd)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("detect: -chip is required")
	}
	dev, err := loadChip(*chip)
	if err != nil {
		return err
	}
	geom := dev.Geometry()
	addr, err := geom.AddrOfSegment(*seg)
	if err != nil {
		return err
	}
	programmed, err := core.DetectStress(dev, addr, *tpew, *reads)
	if err != nil {
		return err
	}
	if err := saveChip(dev, *chip); err != nil {
		return err
	}
	cells := geom.CellsPerSegment()
	frac := float64(programmed) / float64(cells)
	fmt.Fprintf(out, "segment %d: %d of %d cells still programmed at %v (%.1f%%)\n", *seg, programmed, cells, *tpew, 100*frac)
	if frac > 0.04 {
		fmt.Fprintln(out, "assessment: WORN (prior heavy use)")
	} else {
		fmt.Fprintln(out, "assessment: fresh")
	}
	return nil
}

func cmdInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	chip := fs.String("chip", "", "chip file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chip == "" {
		return fmt.Errorf("info: -chip is required")
	}
	dev, err := loadChip(*chip)
	if err != nil {
		return err
	}
	geom := dev.Geometry()
	fmt.Fprintf(out, "part:     %s\nseed:     %d\nflash:    %d banks x %d segments x %d B (%d KB)\n",
		dev.PartName(), dev.Seed(), geom.Banks, geom.SegmentsPerBank, geom.SegmentBytes, geom.TotalBytes()/1024)
	if ager, ok := device.As[device.Ager](dev); ok && ager.AgeYears() > 0 {
		fmt.Fprintf(out, "age:      %.1f years of unpowered storage\n", ager.AgeYears())
	}
	insp, ok := device.As[device.WearInspector](dev)
	if !ok {
		return fmt.Errorf("info: %s does not expose wear inspection", dev.PartName())
	}
	fmt.Fprintf(out, "%-8s %-12s %-12s %-12s %s\n", "segment", "min wear", "mean wear", "max wear", "worn cells")
	for seg := 0; seg < geom.TotalSegments(); seg++ {
		minW, meanW, maxW, err := insp.SegmentWearSummary(seg)
		if err != nil {
			return err
		}
		if maxW == 0 {
			continue
		}
		addr, err := geom.AddrOfSegment(seg)
		if err != nil {
			return err
		}
		worn, err := insp.WornCellCount(addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-8d %-12.1f %-12.1f %-12.1f %d\n", seg, minW, meanW, maxW, worn)
	}
	return nil
}
