// Experiment-suite benchmarks: the whole evaluation registry end to end,
// serial vs parallel, so the perf trajectory of the experiment engine is
// tracked from PR to PR. With -benchjson the timings are also written as
// BENCH_experiments.json (schema flashmark-bench-experiments/v1), which
// CI uploads as an artifact on every run.
//
// Run: make bench-json
// (equivalently: go test -run xxx -bench BenchmarkExperimentSuite -benchtime 1x -benchjson BENCH_experiments.json .)
package flashmark_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/flashmark/flashmark/internal/experiment"
)

var benchJSON = flag.String("benchjson", "", "write BenchmarkExperimentSuite timings to this JSON file")

// suiteMode is one benchmarked configuration of the experiment engine.
type suiteMode struct {
	Workers     int              `json:"workers"`
	TotalNs     int64            `json:"total_ns"`
	Experiments map[string]int64 `json:"experiments_ns"`
}

// suiteReport is the BENCH_experiments.json payload.
type suiteReport struct {
	Schema     string               `json:"schema"`
	GoMaxProcs int                  `json:"go_max_procs"`
	GoVersion  string               `json:"go_version"`
	Fast       bool                 `json:"fast"`
	Modes      map[string]suiteMode `json:"modes"`
	// Speedup is serial total over parallel total (1.0 on one core).
	Speedup float64 `json:"speedup"`
}

// runSuite executes every registered experiment once with the given
// worker bound, returning the total and per-experiment wall-clock.
func runSuite(b *testing.B, workers int) (time.Duration, map[string]int64) {
	b.Helper()
	cfg := experiment.Config{Fast: true, Workers: workers}
	per := make(map[string]int64)
	start := time.Now()
	for _, id := range experiment.IDs() {
		expStart := time.Now()
		if _, err := experiment.Run(id, cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		per[id] = time.Since(expStart).Nanoseconds()
	}
	return time.Since(start), per
}

// BenchmarkExperimentSuite times the full evaluation registry with the
// serial engine (workers=1) and the parallel engine (workers=GOMAXPROCS)
// — the headline ratio the CI bench-smoke step records. Artifacts are
// byte-identical between the two (see TestArtifactsIdenticalAcross-
// WorkerCounts); only wall-clock may differ.
func BenchmarkExperimentSuite(b *testing.B) {
	report := suiteReport{
		Schema:     "flashmark-bench-experiments/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Fast:       true,
		Modes:      map[string]suiteMode{},
	}
	for _, m := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(m.name, func(b *testing.B) {
			best := time.Duration(0)
			var bestPer map[string]int64
			for i := 0; i < b.N; i++ {
				total, per := runSuite(b, m.workers)
				if best == 0 || total < best {
					best, bestPer = total, per
				}
			}
			b.ReportMetric(best.Seconds(), "suite-s")
			report.Modes[m.name] = suiteMode{Workers: m.workers, TotalNs: best.Nanoseconds(), Experiments: bestPer}
		})
	}
	if s, p := report.Modes["serial"], report.Modes["parallel"]; p.TotalNs > 0 {
		report.Speedup = float64(s.TotalNs) / float64(p.TotalNs)
	}
	if *benchJSON == "" {
		return
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
