module github.com/flashmark/flashmark

go 1.22
