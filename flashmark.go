// Package flashmark is a simulation-backed implementation of Flashmark
// (Poudel, Ray, Milenkovic — DAC 2020): watermarking NOR flash memories
// for counterfeit detection by irreversibly imprinting data into the
// physical wear of flash cells and reading it back through timed partial
// erase operations.
//
// The package is the public facade over the internal subsystems:
//
//   - a floating-gate cell physics model (internal/floatgate),
//   - a NOR array and MSP430-style flash controller (internal/nor,
//     internal/flashctl) with virtual-time accounting (internal/vclock),
//   - a substrate-neutral device interface (internal/device) that both
//     the NOR microcontroller (internal/mcu) and the NAND adapter
//     (internal/nand) satisfy, plus fault-injecting and op-counting
//     decorators,
//   - the Flashmark procedures — characterize, imprint, extract,
//     replicate, calibrate (internal/core) — written once against that
//     interface,
//   - the watermark payload codec with tamper-evident balanced coding and
//     signatures (internal/wmcode),
//   - the supply-chain verifier and attacker models (internal/counterfeit)
//     and prior-work comparators (internal/baseline).
//
// # Quick start
//
//	dev, _ := flashmark.NewDevice(flashmark.PartMSP430F5438(), 42)
//	codec := flashmark.Codec{Key: []byte("manufacturer-key")}
//	payload, _ := codec.Encode(flashmark.Payload{
//		Manufacturer: "TC", DieID: 1001, Status: flashmark.StatusAccept,
//	})
//	img, _ := flashmark.Replicate(payload, 7, dev.Part().Geometry.WordsPerSegment())
//	_ = flashmark.Imprint(dev, 0, img, flashmark.ImprintOptions{NPE: 80000, Accelerated: true})
//
//	words, _ := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: 25 * time.Microsecond})
//	views, _ := flashmark.ReplicaViews(words, codec.PayloadWords(), 7)
//	got, report, _ := codec.DecodeReplicas(views)
//
// See examples/ for complete programs and cmd/fmexperiments for the
// reproduction of every table and figure in the paper's evaluation.
package flashmark

import (
	"context"
	"io"

	"github.com/flashmark/flashmark/internal/core"
	"github.com/flashmark/flashmark/internal/counterfeit"
	"github.com/flashmark/flashmark/internal/device"
	"github.com/flashmark/flashmark/internal/ecc"
	"github.com/flashmark/flashmark/internal/floatgate"
	"github.com/flashmark/flashmark/internal/mcu"
	"github.com/flashmark/flashmark/internal/nand"
	"github.com/flashmark/flashmark/internal/wmcode"
)

// Device is the substrate-neutral handle every Flashmark procedure
// accepts: geometry, erase/program/read, the abortable erase, virtual
// clock accounting and persistence. Both backends satisfy it.
type Device = device.Device

// Fab fabricates fresh dice of one product family from chip seeds.
type Fab = device.Fab

// Part describes a microcontroller model.
type Part = mcu.Part

// Part catalog.
var (
	PartMSP430F5438 = mcu.PartMSP430F5438
	PartMSP430F5529 = mcu.PartMSP430F5529
	PartSmallSim    = mcu.PartSmallSim
	PartFastNOR     = mcu.PartFastNOR
	PartByName      = mcu.PartByName
)

// NewDevice fabricates a fresh NOR chip; the seed is the die's physical
// identity (its manufacturing variation).
func NewDevice(part Part, seed uint64) (Device, error) { return mcu.Open(part, seed) }

// NORFab returns a fabricator for a NOR part.
func NORFab(part Part) Fab { return mcu.Fab(part) }

// LoadDevice reconstructs a NOR chip from a chip file written by
// Device.Save.
func LoadDevice(r io.Reader) (Device, error) { return mcu.LoadDevice(r) }

// Decorators and capability access.
var (
	// InjectFaults wraps a device with a seeded fault injector.
	InjectFaults = device.InjectFaults
	// Record wraps a device with an op-counting recorder.
	Record = device.Record
	// AgeDevice advances a device's storage age when the backend models
	// retention (the mcu NOR backend does).
	AgeDevice = device.Age
	// SetDeviceTempC sets the ambient temperature when the backend
	// models it.
	SetDeviceTempC = device.SetAmbientTempC
)

// FaultConfig configures the fault-injecting decorator.
type FaultConfig = device.FaultConfig

// ErrInjected is the sentinel wrapped by every injected fault.
var ErrInjected = device.ErrInjected

// Core Flashmark procedures (paper Figs. 3, 7, 8).
type (
	// ImprintOptions controls Imprint.
	ImprintOptions = core.ImprintOptions
	// ExtractOptions controls Extract.
	ExtractOptions = core.ExtractOptions
	// CharacterizeOptions controls Characterize.
	CharacterizeOptions = core.CharacterizeOptions
	// CharacterizePoint is one row of a characterization sweep.
	CharacterizePoint = core.CharacterizePoint
	// Calibration is the manufacturer-side extraction window.
	Calibration = core.Calibration
	// CalibrateOptions controls Calibrate.
	CalibrateOptions = core.CalibrateOptions
)

// Core procedure entry points.
var (
	Imprint            = core.ImprintSegment
	Extract            = core.ExtractSegment
	Characterize       = core.CharacterizeSegment
	DetectStress       = core.DetectStress
	Calibrate          = core.Calibrate
	Replicate          = core.Replicate
	MajorityDecode     = core.MajorityDecode
	ReplicaViews       = core.ReplicaViews
	BitErrors          = core.BitErrors
	BER                = core.BER
	AllErasedTime      = core.AllErasedTime
	ReferenceWatermark = core.ReferenceWatermark
)

// DefaultNPE is the default imprint stress count.
const DefaultNPE = core.DefaultNPE

// Watermark payload codec (manufacturing metadata with tamper evidence).
type (
	// Codec encodes and decodes watermark payloads.
	Codec = wmcode.Codec
	// Payload is the manufacturing metadata carried by a watermark.
	Payload = wmcode.Payload
	// Status is the die-sort outcome.
	Status = wmcode.Status
	// IntegrityReport carries decode integrity findings.
	IntegrityReport = wmcode.Report
)

// Die-sort statuses.
const (
	StatusAccept  = wmcode.StatusAccept
	StatusReject  = wmcode.StatusReject
	StatusUnknown = wmcode.StatusUnknown
)

// Supply-chain verification.
type (
	// Verifier is the system integrator's incoming-inspection policy.
	Verifier = counterfeit.Verifier
	// VerifyResult is the verifier's full report for one chip.
	VerifyResult = counterfeit.Result
	// Verdict classifies a chip.
	Verdict = counterfeit.Verdict
	// ChipClass is ground-truth provenance in population experiments.
	ChipClass = counterfeit.ChipClass
	// FactoryConfig describes manufacturer watermarking and attacker
	// derivations.
	FactoryConfig = counterfeit.FactoryConfig
	// PopulationSpec sizes a population experiment.
	PopulationSpec = counterfeit.PopulationSpec
)

// Verdicts.
const (
	VerdictGenuine       = counterfeit.VerdictGenuine
	VerdictNoWatermark   = counterfeit.VerdictNoWatermark
	VerdictRejectDie     = counterfeit.VerdictRejectDie
	VerdictTampered      = counterfeit.VerdictTampered
	VerdictWrongIdentity = counterfeit.VerdictWrongIdentity
	VerdictRecycled      = counterfeit.VerdictRecycled
	VerdictDuplicateID   = counterfeit.VerdictDuplicateID
	VerdictInconclusive  = counterfeit.VerdictInconclusive
)

// Auditor is the batch-local die-identity ledger that catches
// replay-imprinted clones by their duplicated die IDs.
type Auditor = counterfeit.Auditor

// NewAuditor returns an empty die-identity ledger.
var NewAuditor = counterfeit.NewAuditor

// Chip provenance classes.
const (
	ClassGenuineAccept   = counterfeit.ClassGenuineAccept
	ClassGenuineReject   = counterfeit.ClassGenuineReject
	ClassRecycled        = counterfeit.ClassRecycled
	ClassMetadataForgery = counterfeit.ClassMetadataForgery
	ClassDigitalClone    = counterfeit.ClassDigitalClone
	ClassTopUpTamper     = counterfeit.ClassTopUpTamper
	ClassUnmarked        = counterfeit.ClassUnmarked
	ClassReplayImprint   = counterfeit.ClassReplayImprint
)

// Fabricate manufactures one chip of a ground-truth class.
var Fabricate = counterfeit.Fabricate

// RunPopulation fabricates and verifies a chip population.
var RunPopulation = counterfeit.RunPopulation

// RunPopulationContext fabricates and verifies a chip population with
// bounded parallelism and cooperative cancellation; outcomes are
// byte-identical to RunPopulation when the context is never canceled.
var RunPopulationContext = counterfeit.RunPopulationContext

// Verify runs the full incoming-inspection flow on one chip under a
// context deadline — the entry point long-running services (see
// internal/service / cmd/fmverifyd) call so a slow or wedged inspection
// respects the caller's request budget. A nil-deadline context makes
// this identical to v.Verify(dev).
func Verify(ctx context.Context, v *Verifier, dev Device) (VerifyResult, error) {
	return v.VerifyContext(ctx, dev)
}

// NAND substrate (paper §VI: the method applies to NAND as well). A
// NAND chip opened through NewNANDDevice satisfies the same Device
// interface, so Imprint/Extract/Characterize work on it unchanged —
// there is no NAND-specific watermark API anymore.
type (
	// NANDGeometry describes a NAND array.
	NANDGeometry = nand.Geometry
	// NANDTiming holds NAND operation durations.
	NANDTiming = nand.Timing
)

// NAND entry points.
var (
	// NewNANDDevice fabricates a NAND chip behind the Device interface.
	NewNANDDevice = nand.Open
	// NANDFab returns a fabricator for a NAND family.
	NANDFab = nand.Fab
	// LoadNANDDevice reconstructs a NAND chip from its Save output.
	LoadNANDDevice = nand.LoadAdapter
	SmallNAND      = nand.SmallNAND
	SLCTiming      = nand.SLCTiming
)

// DefaultCellParams returns the calibrated floating-gate physics
// constants shared by all catalog parts.
var DefaultCellParams = floatgate.DefaultParams

// Error-correction substrate (paper §V names ECC as the alternative to
// replication): SECDED(16,11) sized to the flash word.
var (
	ECCEncodeBytes   = ecc.EncodeBytes
	ECCDecodeBytes   = ecc.DecodeBytes
	ECCWordsForBytes = ecc.WordsForBytes
)
