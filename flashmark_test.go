package flashmark_test

import (
	"bytes"
	"testing"
	"time"

	flashmark "github.com/flashmark/flashmark"
)

// TestFacadeEndToEnd drives the full public API surface the way the
// package documentation advertises.
func TestFacadeEndToEnd(t *testing.T) {
	dev, err := flashmark.NewDevice(flashmark.PartSmallSim(), 42)
	if err != nil {
		t.Fatal(err)
	}
	codec := flashmark.Codec{Key: []byte("manufacturer-key")}
	payload, err := codec.Encode(flashmark.Payload{
		Manufacturer: "TC",
		DieID:        1001,
		Status:       flashmark.StatusAccept,
	})
	if err != nil {
		t.Fatal(err)
	}
	segWords := dev.Geometry().WordsPerSegment()
	img, err := flashmark.Replicate(payload, 7, segWords)
	if err != nil {
		t.Fatal(err)
	}
	if err := flashmark.Imprint(dev, 0, img, flashmark.ImprintOptions{NPE: 80_000, Accelerated: true}); err != nil {
		t.Fatal(err)
	}

	// Persist and reload: the watermark must survive serialization.
	var buf bytes.Buffer
	if err := dev.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dev2, err := flashmark.LoadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}

	words, err := flashmark.Extract(dev2, 0, flashmark.ExtractOptions{TPEW: 25 * time.Microsecond, Reads: 3})
	if err != nil {
		t.Fatal(err)
	}
	views, err := flashmark.ReplicaViews(words, codec.PayloadWords(), 7)
	if err != nil {
		t.Fatal(err)
	}
	got, report, err := codec.DecodeReplicas(views)
	if err != nil {
		t.Fatal(err)
	}
	if report.Tampered() {
		t.Fatalf("pristine chip reported tampered: %+v", report)
	}
	if got.Manufacturer != "TC" || got.DieID != 1001 || got.Status != flashmark.StatusAccept {
		t.Fatalf("payload = %+v", got)
	}

	// Verifier agrees.
	v := &flashmark.Verifier{Codec: codec, Manufacturer: "TC"}
	res, err := v.Verify(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != flashmark.VerdictGenuine {
		t.Fatalf("verdict = %v", res.Verdict)
	}
}

func TestFacadeFabricateAttackers(t *testing.T) {
	cfg := flashmark.FactoryConfig{
		Fab:   flashmark.NORFab(flashmark.PartSmallSim()),
		Codec: flashmark.Codec{Key: []byte("k")},
	}
	dev, err := flashmark.Fabricate(flashmark.ClassMetadataForgery, cfg, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	v := &flashmark.Verifier{Codec: flashmark.Codec{Key: []byte("k")}, Manufacturer: "TC"}
	res, err := v.Verify(dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != flashmark.VerdictNoWatermark {
		t.Fatalf("forgery verdict = %v", res.Verdict)
	}
}

// TestAllPartsRoundTrip drives the imprint/extract round trip on every
// catalog part: the algorithms are part-agnostic; only the published
// window differs per family.
func TestAllPartsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-part round trip is slow")
	}
	windows := map[string]time.Duration{
		"MSP430F5438": 25 * time.Microsecond,
		"MSP430F5529": 25 * time.Microsecond,
		"FM-SIM16":    25 * time.Microsecond,
		"FAST-NOR":    25 * time.Microsecond,
		"ALT-NOR":     39 * time.Microsecond, // per-family calibration (see the family experiment)
	}
	for name, tpew := range windows {
		part, err := flashmark.PartByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := flashmark.NewDevice(part, 0xFACE)
		if err != nil {
			t.Fatal(err)
		}
		wm := flashmark.ReferenceWatermark(part.Geometry.WordsPerSegment())
		if err := flashmark.Imprint(dev, 0, wm, flashmark.ImprintOptions{NPE: 80_000, Accelerated: true}); err != nil {
			t.Fatalf("%s imprint: %v", name, err)
		}
		got, err := flashmark.Extract(dev, 0, flashmark.ExtractOptions{TPEW: tpew, Reads: 3})
		if err != nil {
			t.Fatalf("%s extract: %v", name, err)
		}
		if ber := flashmark.BER(got, wm, part.Geometry.WordBits()); ber > 0.12 {
			t.Errorf("%s BER = %.3f at its family window", name, ber)
		}
	}
}
